"""Declarative scenario specifications.

A :class:`ScenarioSpec` is a frozen, JSON-serializable description of one
experiment: the topology, the channel environment, the policies under test,
the schedule (per-round bandit run, periodic stale-weight run, or a pure
strategy-decision protocol run) and the replication plan.  Specs round-trip
losslessly through ``to_dict()``/``from_dict()`` (and therefore through
JSON), validate themselves with actionable error messages, and know how to
materialize the runtime objects (:class:`~repro.api.ChannelAccessSystem`,
policies) they describe.

The tree::

    ScenarioSpec
    ├── TopologySpec      which conflict graph to build
    ├── ChannelSpec       which ground-truth channel state to attach
    ├── PolicySpec        one per learning policy under test (a tuple)
    ├── ScheduleSpec      per-round | periodic | protocol
    ├── DynamicsSpec      optional topology dynamics (churn / flap / mobility)
    ├── TransportSpec     which message transport carries the protocol
    ├── FaultSpec         optional crash-stop / Byzantine fault injection
    └── ReplicationSpec   how many seed-streamed replications, how many jobs

Running a spec is :func:`repro.spec.runner.run_scenario`; naming and sharing
specs is :mod:`repro.spec.registry`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.channels.catalog import DEFAULT_RELATIVE_STD, assign_rates_to_network
from repro.channels.state import ChannelState
from repro.graph.conflict_graph import ConflictGraph
from repro.graph.topology import (
    connected_random_network,
    grid_network,
    linear_network,
    random_network,
    ring_network,
    star_network,
)

__all__ = [
    "SpecError",
    "TopologySpec",
    "ChannelSpec",
    "PolicySpec",
    "ScheduleSpec",
    "DynamicsSpec",
    "TransportSpec",
    "FaultSpec",
    "ReplicationSpec",
    "ScenarioSpec",
]

#: Extended graphs above this many vertices switch the protocol's local MWIS
#: from exact enumeration to the greedy constant-approximation (the same
#: threshold the legacy fig6/fig8/complexity experiments used).
AUTO_GREEDY_VERTEX_THRESHOLD = 400


class SpecError(ValueError):
    """A scenario specification is invalid or cannot be deserialized."""


# ----------------------------------------------------------------------
# (De)serialization helpers shared by every spec class
# ----------------------------------------------------------------------
def _require_mapping(data, path: str) -> Mapping:
    if not isinstance(data, Mapping):
        raise SpecError(
            f"{path}: expected a JSON object, got {type(data).__name__}"
        )
    return data


def _check_keys(data: Mapping, cls, path: str) -> None:
    allowed = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise SpecError(
            f"{path}: unknown field(s) {unknown}; allowed fields are {sorted(allowed)}"
        )


def _as_int(value, path: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise SpecError(f"{path}: expected an integer, got {value!r}")
    return value


def _as_float(value, path: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SpecError(f"{path}: expected a number, got {value!r}")
    return float(value)


def _as_str(value, path: str) -> str:
    if not isinstance(value, str):
        raise SpecError(f"{path}: expected a string, got {value!r}")
    return value


def _as_bool(value, path: str) -> bool:
    if not isinstance(value, bool):
        raise SpecError(f"{path}: expected true/false, got {value!r}")
    return value


def _choice(value, options: Sequence[str], path: str) -> str:
    value = _as_str(value, path)
    if value not in options:
        raise SpecError(
            f"{path}: unknown value {value!r}; choose one of {sorted(options)}"
        )
    return value


def _reject_foreign_fields(spec, owner_kinds: Mapping[str, Sequence[str]], path: str) -> None:
    """Reject non-default values of fields that the chosen kind never reads.

    A silently ignored knob is worse than an error: it changes the content
    hash (planning no-op sweep axes that recompute identical results) while
    changing nothing about the run.  ``owner_kinds`` maps field name to the
    kinds that actually consume it.
    """
    defaults = {f.name: f.default for f in fields(spec)}
    for name, kinds in owner_kinds.items():
        if spec.kind not in kinds and getattr(spec, name) != defaults[name]:
            owners = "/".join(f"'{kind}'" for kind in kinds)
            raise SpecError(
                f"{path}.{name}: only meaningful with kind={owners} "
                f"(got kind={spec.kind!r})"
            )


# ----------------------------------------------------------------------
# TopologySpec
# ----------------------------------------------------------------------
TOPOLOGY_KINDS = ("random", "connected-random", "linear", "grid", "ring", "star")


@dataclass(frozen=True)
class TopologySpec:
    """Which conflict graph to build.

    ``random`` / ``connected-random`` are the paper's unit-disk deployments
    (``average_degree`` controls density); ``linear`` is the Fig. 5 worst
    case; ``grid`` needs ``rows`` and ``cols`` (``num_nodes = rows * cols``);
    ``ring`` and ``star`` are the combinatorial test topologies.
    """

    kind: str = "random"
    num_nodes: int = 20
    num_channels: int = 3
    #: Target average conflict degree (random kinds only).
    average_degree: float = 6.0
    #: Grid shape; only used (and required) by ``kind="grid"``.
    rows: int = 0
    cols: int = 0

    def __post_init__(self) -> None:
        self.validate()

    def validate(self, path: str = "topology") -> None:
        """Raise :class:`SpecError` when the topology is ill-formed."""
        if self.kind not in TOPOLOGY_KINDS:
            raise SpecError(
                f"{path}.kind: unknown topology kind {self.kind!r}; "
                f"choose one of {sorted(TOPOLOGY_KINDS)}"
            )
        if self.num_nodes <= 0:
            raise SpecError(
                f"{path}.num_nodes: must be positive, got {self.num_nodes}"
            )
        if self.num_channels <= 0:
            raise SpecError(
                f"{path}.num_channels: must be positive, got {self.num_channels}"
            )
        if self.kind in ("random", "connected-random") and self.average_degree <= 0:
            raise SpecError(
                f"{path}.average_degree: must be positive for {self.kind!r} "
                f"topologies, got {self.average_degree}"
            )
        if self.kind == "grid":
            if self.rows <= 0 or self.cols <= 0:
                raise SpecError(
                    f"{path}: grid topologies need positive rows and cols, "
                    f"got rows={self.rows}, cols={self.cols}"
                )
            if self.rows * self.cols != self.num_nodes:
                raise SpecError(
                    f"{path}: num_nodes ({self.num_nodes}) must equal "
                    f"rows * cols ({self.rows} * {self.cols} = {self.rows * self.cols})"
                )
        if self.kind == "star" and self.num_nodes < 2:
            raise SpecError(
                f"{path}.num_nodes: a star needs a hub and at least one leaf "
                f"(num_nodes >= 2), got {self.num_nodes}"
            )

    def with_size(self, num_nodes: int, num_channels: int) -> "TopologySpec":
        """The same topology family at a different ``(N, M)`` (sweep support)."""
        return replace(self, num_nodes=num_nodes, num_channels=num_channels)

    def build(self, rng: np.random.Generator) -> ConflictGraph:
        """Materialize the conflict graph, drawing positions from ``rng``."""
        if self.kind == "random":
            return random_network(
                self.num_nodes,
                self.num_channels,
                average_degree=self.average_degree,
                rng=rng,
            )
        if self.kind == "connected-random":
            return connected_random_network(
                self.num_nodes,
                self.num_channels,
                average_degree=self.average_degree,
                rng=rng,
            )
        if self.kind == "linear":
            return linear_network(self.num_nodes, self.num_channels)
        if self.kind == "grid":
            return grid_network(self.rows, self.cols, self.num_channels)
        if self.kind == "ring":
            return ring_network(self.num_nodes, self.num_channels)
        if self.kind == "star":
            return star_network(self.num_nodes - 1, self.num_channels)
        raise SpecError(f"unhandled topology kind {self.kind!r}")  # pragma: no cover

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (inverse of :meth:`from_dict`)."""
        return {
            "kind": self.kind,
            "num_nodes": self.num_nodes,
            "num_channels": self.num_channels,
            "average_degree": self.average_degree,
            "rows": self.rows,
            "cols": self.cols,
        }

    @classmethod
    def from_dict(cls, data, path: str = "topology") -> "TopologySpec":
        """Deserialize, raising :class:`SpecError` with the offending path."""
        data = _require_mapping(data, path)
        _check_keys(data, cls, path)
        kwargs: Dict[str, object] = {}
        if "kind" in data:
            kwargs["kind"] = _choice(data["kind"], TOPOLOGY_KINDS, f"{path}.kind")
        for name in ("num_nodes", "num_channels", "rows", "cols"):
            if name in data:
                kwargs[name] = _as_int(data[name], f"{path}.{name}")
        if "average_degree" in data:
            kwargs["average_degree"] = _as_float(
                data["average_degree"], f"{path}.average_degree"
            )
        return cls(**kwargs)


# ----------------------------------------------------------------------
# ChannelSpec
# ----------------------------------------------------------------------
CHANNEL_KINDS = ("paper-rates", "mean-matrix", "gilbert-elliott", "adversarial")

#: Channel kinds whose models mutate internal state on sampling; they cannot
#: be averaged over replications (successive draws are coupled).
STATEFUL_CHANNEL_KINDS = ("gilbert-elliott", "adversarial")


@dataclass(frozen=True)
class ChannelSpec:
    """Which ground-truth channel environment to attach.

    ``paper-rates`` draws each (node, channel) mean uniformly from the
    paper's 8-rate catalogue (or a custom ``rates`` pool) and evolves every
    channel as an i.i.d. zero-clipped Gaussian with ``relative_std`` of the
    mean; ``mean-matrix`` pins the exact ``(N, M)`` mean matrix in the spec,
    making the scenario's environment fully declarative.

    The beyond-i.i.d. models of the paper's future-work section
    (:mod:`repro.channels.dynamics`) are reachable declaratively too:
    ``gilbert-elliott`` gives every (node, channel) pair a two-state Markov
    channel whose good-state rate is drawn from the rate pool (bad rate =
    ``ge_bad_fraction`` of it); ``adversarial`` commits every pair to a
    seeded oblivious gain sequence of length ``adversarial_period`` drawn
    from the pool.  Both are *stateful*, so scenarios using them are
    restricted to one replication.
    """

    kind: str = "paper-rates"
    relative_std: float = DEFAULT_RELATIVE_STD
    #: Custom rate pool (``None`` = the paper catalogue); used by every kind
    #: except ``mean-matrix``.
    rates: Optional[Tuple[float, ...]] = None
    #: Pinned mean matrix for ``mean-matrix`` (row per node).
    means: Optional[Tuple[Tuple[float, ...], ...]] = None
    #: Gilbert-Elliott: bad-state rate as a fraction of the good-state rate.
    ge_bad_fraction: float = 0.25
    #: Gilbert-Elliott transition probabilities per sample.
    ge_p_good_to_bad: float = 0.1
    ge_p_bad_to_good: float = 0.3
    #: Adversarial: length of each pair's committed gain sequence.
    adversarial_period: int = 16

    def __post_init__(self) -> None:
        self.validate()

    @property
    def is_stateful(self) -> bool:
        """Whether this environment's models mutate state on sampling."""
        return self.kind in STATEFUL_CHANNEL_KINDS

    def validate(self, path: str = "channels") -> None:
        """Raise :class:`SpecError` when the channel spec is ill-formed."""
        if self.kind not in CHANNEL_KINDS:
            raise SpecError(
                f"{path}.kind: unknown channel kind {self.kind!r}; "
                f"choose one of {sorted(CHANNEL_KINDS)}"
            )
        if self.relative_std < 0:
            raise SpecError(
                f"{path}.relative_std: must be non-negative, got {self.relative_std}"
            )
        if self.kind != "mean-matrix":
            if self.means is not None:
                raise SpecError(
                    f"{path}.means: only valid with kind='mean-matrix' "
                    f"(got kind={self.kind!r})"
                )
            if self.rates is not None and len(self.rates) == 0:
                raise SpecError(f"{path}.rates: the rate pool must not be empty")
        if self.kind == "mean-matrix":
            if self.rates is not None:
                raise SpecError(
                    f"{path}.rates: only valid with rate-pool kinds "
                    f"(got kind={self.kind!r})"
                )
            if not self.means:
                raise SpecError(
                    f"{path}.means: kind='mean-matrix' needs a non-empty "
                    "row-per-node matrix of mean rates"
                )
            width = len(self.means[0])
            if width == 0 or any(len(row) != width for row in self.means):
                raise SpecError(
                    f"{path}.means: all rows must have the same positive length"
                )
        _reject_foreign_fields(
            self,
            {
                "relative_std": ("paper-rates", "mean-matrix"),
                "ge_bad_fraction": ("gilbert-elliott",),
                "ge_p_good_to_bad": ("gilbert-elliott",),
                "ge_p_bad_to_good": ("gilbert-elliott",),
                "adversarial_period": ("adversarial",),
            },
            path,
        )
        if self.kind == "gilbert-elliott":
            if not (0.0 <= self.ge_bad_fraction <= 1.0):
                raise SpecError(
                    f"{path}.ge_bad_fraction: must be in [0, 1], "
                    f"got {self.ge_bad_fraction}"
                )
            for name in ("ge_p_good_to_bad", "ge_p_bad_to_good"):
                value = getattr(self, name)
                if not (0.0 <= value <= 1.0):
                    raise SpecError(f"{path}.{name}: must be in [0, 1], got {value}")
            if self.ge_p_good_to_bad + self.ge_p_bad_to_good == 0.0:
                raise SpecError(
                    f"{path}: the Gilbert-Elliott chain must be able to move "
                    "between states (both transition probabilities are 0)"
                )
        if self.kind == "adversarial" and self.adversarial_period < 1:
            raise SpecError(
                f"{path}.adversarial_period: must be >= 1, "
                f"got {self.adversarial_period}"
            )

    def _build_stateful_models(
        self, num_nodes: int, num_channels: int, rng: np.random.Generator
    ):
        """Per-pair model grid for the stateful kinds (one rng stream)."""
        from repro.channels.catalog import PAPER_RATES_KBPS
        from repro.channels.dynamics import AdversarialChannel, GilbertElliottChannel

        pool = np.asarray(
            self.rates if self.rates is not None else PAPER_RATES_KBPS, dtype=float
        )
        if self.kind == "gilbert-elliott":
            good = assign_rates_to_network(
                num_nodes, num_channels, rng=rng, rates=self.rates
            )
            return [
                [
                    GilbertElliottChannel(
                        good_rate=float(good[node, channel]),
                        bad_rate=float(good[node, channel]) * self.ge_bad_fraction,
                        p_good_to_bad=self.ge_p_good_to_bad,
                        p_bad_to_good=self.ge_p_bad_to_good,
                    )
                    for channel in range(num_channels)
                ]
                for node in range(num_nodes)
            ]
        if self.kind == "adversarial":
            draws = rng.integers(
                0, pool.size, size=(num_nodes, num_channels, self.adversarial_period)
            )
            return [
                [
                    AdversarialChannel(pool[draws[node, channel]].tolist())
                    for channel in range(num_channels)
                ]
                for node in range(num_nodes)
            ]
        raise SpecError(f"unhandled stateful channel kind {self.kind!r}")  # pragma: no cover

    def build_means(
        self, num_nodes: int, num_channels: int, rng: np.random.Generator
    ) -> np.ndarray:
        """The ``(N, M)`` true-mean matrix of this environment.

        For the stateful kinds the means are the stationary (Gilbert-Elliott)
        or sequence-average (adversarial) means of the seeded models, so they
        consume the generator exactly like :meth:`build_state` does.
        """
        if self.kind == "mean-matrix":
            means = np.asarray(self.means, dtype=float)
            if means.shape != (num_nodes, num_channels):
                raise SpecError(
                    f"channels.means: shape {means.shape} does not match the "
                    f"topology ({num_nodes} nodes x {num_channels} channels)"
                )
            return means
        if self.is_stateful:
            models = self._build_stateful_models(num_nodes, num_channels, rng)
            return np.array(
                [[model.mean for model in row] for row in models], dtype=float
            )
        return assign_rates_to_network(
            num_nodes, num_channels, rng=rng, rates=self.rates
        )

    def build_state(
        self, num_nodes: int, num_channels: int, rng: np.random.Generator
    ) -> ChannelState:
        """Materialize the :class:`~repro.channels.state.ChannelState`."""
        if self.is_stateful:
            return ChannelState(
                self._build_stateful_models(num_nodes, num_channels, rng)
            )
        means = self.build_means(num_nodes, num_channels, rng)
        return ChannelState.from_mean_matrix(means, relative_std=self.relative_std)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (inverse of :meth:`from_dict`)."""
        return {
            "kind": self.kind,
            "relative_std": self.relative_std,
            "rates": list(self.rates) if self.rates is not None else None,
            "means": [list(row) for row in self.means] if self.means is not None else None,
            "ge_bad_fraction": self.ge_bad_fraction,
            "ge_p_good_to_bad": self.ge_p_good_to_bad,
            "ge_p_bad_to_good": self.ge_p_bad_to_good,
            "adversarial_period": self.adversarial_period,
        }

    @classmethod
    def from_dict(cls, data, path: str = "channels") -> "ChannelSpec":
        """Deserialize, raising :class:`SpecError` with the offending path."""
        data = _require_mapping(data, path)
        _check_keys(data, cls, path)
        kwargs: Dict[str, object] = {}
        if "kind" in data:
            kwargs["kind"] = _choice(data["kind"], CHANNEL_KINDS, f"{path}.kind")
        for name in ("relative_std", "ge_bad_fraction", "ge_p_good_to_bad", "ge_p_bad_to_good"):
            if name in data:
                kwargs[name] = _as_float(data[name], f"{path}.{name}")
        if "adversarial_period" in data:
            kwargs["adversarial_period"] = _as_int(
                data["adversarial_period"], f"{path}.adversarial_period"
            )
        if data.get("rates") is not None:
            raw = data["rates"]
            if not isinstance(raw, Sequence) or isinstance(raw, (str, bytes)):
                raise SpecError(f"{path}.rates: expected a list of numbers, got {raw!r}")
            kwargs["rates"] = tuple(
                _as_float(rate, f"{path}.rates[{i}]") for i, rate in enumerate(raw)
            )
        if data.get("means") is not None:
            raw = data["means"]
            if not isinstance(raw, Sequence) or isinstance(raw, (str, bytes)):
                raise SpecError(
                    f"{path}.means: expected a list of per-node rows, got {raw!r}"
                )
            rows = []
            for i, row in enumerate(raw):
                if not isinstance(row, Sequence) or isinstance(row, (str, bytes)):
                    raise SpecError(
                        f"{path}.means[{i}]: expected a list of numbers, got {row!r}"
                    )
                rows.append(
                    tuple(_as_float(v, f"{path}.means[{i}][{j}]") for j, v in enumerate(row))
                )
            kwargs["means"] = tuple(rows)
        return cls(**kwargs)


# ----------------------------------------------------------------------
# PolicySpec
# ----------------------------------------------------------------------
POLICY_KINDS = ("algorithm2", "llr", "oracle")
SOLVER_CHOICES = ("auto", "exact", "greedy")

_DEFAULT_LABELS = {"algorithm2": "Algorithm2", "llr": "LLR", "oracle": "Oracle"}


@dataclass(frozen=True)
class PolicySpec:
    """One policy under test.

    ``algorithm2`` is the paper's combinatorial-UCB learner, ``llr`` the LLR
    baseline, ``oracle`` the genie playing the optimal fixed strategy.  ``r``
    is the robust-PTAS radius of the distributed strategy decision and
    ``solver`` picks the local MWIS inside the protocol: ``auto`` uses exact
    enumeration up to :data:`AUTO_GREEDY_VERTEX_THRESHOLD` extended-graph
    vertices and the greedy constant-approximation above it (the thresholds
    the paper experiments used); ``exact``/``greedy`` force one.
    """

    kind: str = "algorithm2"
    #: Display label; defaults to the conventional name for the kind.
    label: Optional[str] = None
    #: Robust-PTAS radius of the strategy decision.
    r: int = 2
    solver: str = "auto"

    def __post_init__(self) -> None:
        self.validate()

    def validate(self, path: str = "policies[?]") -> None:
        """Raise :class:`SpecError` when the policy spec is ill-formed."""
        if self.kind not in POLICY_KINDS:
            raise SpecError(
                f"{path}.kind: unknown policy kind {self.kind!r}; "
                f"choose one of {sorted(POLICY_KINDS)}"
            )
        if self.label is not None and not self.label:
            raise SpecError(f"{path}.label: must be a non-empty string when given")
        if self.r < 1:
            raise SpecError(f"{path}.r: the PTAS radius must be >= 1, got {self.r}")
        if self.solver not in SOLVER_CHOICES:
            raise SpecError(
                f"{path}.solver: unknown solver {self.solver!r}; "
                f"choose one of {sorted(SOLVER_CHOICES)}"
            )

    @property
    def display_label(self) -> str:
        """Label used to key this policy's series in results."""
        return self.label if self.label is not None else _DEFAULT_LABELS[self.kind]

    def use_greedy_local_solver(self, num_vertices: int) -> bool:
        """Whether the protocol's local MWIS should be the greedy solver."""
        if self.solver == "greedy":
            return True
        if self.solver == "exact":
            return False
        return num_vertices > AUTO_GREEDY_VERTEX_THRESHOLD

    def build(self, system):
        """Materialize the policy against a :class:`~repro.api.ChannelAccessSystem`."""
        # Imported here: repro.api imports repro.sim, which this module must
        # stay importable without at class-definition time.
        from repro.distributed.framework import DistributedMWISSolver

        if self.kind == "oracle":
            return system.oracle_policy()
        local_solver = self.build_local_solver(system.extended_graph.num_vertices)
        solver = DistributedMWISSolver(
            system.extended_graph, r=self.r, local_solver=local_solver
        )
        if self.kind == "algorithm2":
            return system.paper_policy(solver=solver, r=self.r)
        if self.kind == "llr":
            return system.llr_policy(solver=solver, r=self.r)
        raise SpecError(f"unhandled policy kind {self.kind!r}")  # pragma: no cover

    def build_local_solver(self, num_vertices: int):
        """The protocol's local MWIS solver this spec selects (or ``None``).

        ``None`` means exact enumeration (the protocol default); the greedy
        constant-approximation is returned per the ``solver`` field / the
        auto threshold.  Shared by the static builder and the dynamics
        engine so ``--set policies.0.solver=...`` reaches both.
        """
        from repro.mwis.greedy import GreedyMWISSolver

        return GreedyMWISSolver() if self.use_greedy_local_solver(num_vertices) else None

    def build_dynamic(self, engine, index_graph, reward_scale: float):
        """Materialize the policy against a dynamic-topology engine.

        ``engine`` is a :class:`~repro.dynamics.engine.DynamicStrategyEngine`;
        ``index_graph`` the static arm-index frame (vertex <-> (node,
        channel) never changes under dynamics).  The policy's strategy
        decisions run through :meth:`engine.solver`, so they always see the
        current topology.  ``oracle`` has no meaning under a changing
        topology and is rejected by :meth:`ScenarioSpec.validate`.
        """
        from repro.core.policies import CombinatorialUCBPolicy, LLRPolicy

        solver = engine.solver()
        if self.kind == "algorithm2":
            return CombinatorialUCBPolicy(
                index_graph, solver=solver, reward_scale=reward_scale
            )
        if self.kind == "llr":
            return LLRPolicy(index_graph, solver=solver, reward_scale=reward_scale)
        raise SpecError(
            f"policy kind {self.kind!r} is not supported under dynamics"
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (inverse of :meth:`from_dict`)."""
        return {"kind": self.kind, "label": self.label, "r": self.r, "solver": self.solver}

    @classmethod
    def from_dict(cls, data, path: str = "policies[?]") -> "PolicySpec":
        """Deserialize, raising :class:`SpecError` with the offending path."""
        data = _require_mapping(data, path)
        _check_keys(data, cls, path)
        kwargs: Dict[str, object] = {}
        if "kind" in data:
            kwargs["kind"] = _choice(data["kind"], POLICY_KINDS, f"{path}.kind")
        if data.get("label") is not None:
            kwargs["label"] = _as_str(data["label"], f"{path}.label")
        if "r" in data:
            kwargs["r"] = _as_int(data["r"], f"{path}.r")
        if "solver" in data:
            kwargs["solver"] = _choice(data["solver"], SOLVER_CHOICES, f"{path}.solver")
        return cls(**kwargs)


# ----------------------------------------------------------------------
# ScheduleSpec
# ----------------------------------------------------------------------
SCHEDULE_MODES = ("per-round", "periodic", "protocol")


@dataclass(frozen=True)
class ScheduleSpec:
    """When strategy decisions happen.

    * ``per-round`` — the Fig. 7 regime: one strategy decision per time slot
      for ``num_rounds`` slots (dispatches to ``simulate_batch``).
    * ``periodic`` — the Fig. 8 / Section V-C regime: one decision per period
      of ``y`` slots, for every ``y`` in ``periods``, ``num_periods`` updates
      each (dispatches to ``simulate_periodic``).
    * ``protocol`` — no bandit at all: run the distributed strategy decision
      (Algorithm 3) once per topology and record its convergence trajectory
      and per-vertex costs (the Fig. 6 / Section IV-C studies).
      ``max_mini_rounds`` pads/truncates the reported trajectory (0 = raw).
    """

    mode: str = "per-round"
    num_rounds: int = 1000
    periods: Tuple[int, ...] = (1, 5, 10, 20)
    num_periods: int = 1000
    max_mini_rounds: int = 0

    def __post_init__(self) -> None:
        self.validate()

    def validate(self, path: str = "schedule") -> None:
        """Raise :class:`SpecError` when the schedule is ill-formed."""
        if self.mode not in SCHEDULE_MODES:
            raise SpecError(
                f"{path}.mode: unknown schedule mode {self.mode!r}; "
                f"choose one of {sorted(SCHEDULE_MODES)}"
            )
        if self.mode == "per-round" and self.num_rounds <= 0:
            raise SpecError(
                f"{path}.num_rounds: must be positive, got {self.num_rounds}"
            )
        if self.mode == "periodic":
            if not self.periods:
                raise SpecError(
                    f"{path}.periods: periodic schedules need at least one "
                    "update period"
                )
            bad = [p for p in self.periods if p < 1]
            if bad:
                raise SpecError(
                    f"{path}.periods: every period must be >= 1 slot, got {bad}"
                )
            if self.num_periods <= 0:
                raise SpecError(
                    f"{path}.num_periods: must be positive, got {self.num_periods}"
                )
        if self.mode == "protocol" and self.max_mini_rounds < 0:
            raise SpecError(
                f"{path}.max_mini_rounds: must be >= 0 (0 = run to convergence "
                f"unpadded), got {self.max_mini_rounds}"
            )

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (inverse of :meth:`from_dict`)."""
        return {
            "mode": self.mode,
            "num_rounds": self.num_rounds,
            "periods": list(self.periods),
            "num_periods": self.num_periods,
            "max_mini_rounds": self.max_mini_rounds,
        }

    @classmethod
    def from_dict(cls, data, path: str = "schedule") -> "ScheduleSpec":
        """Deserialize, raising :class:`SpecError` with the offending path."""
        data = _require_mapping(data, path)
        _check_keys(data, cls, path)
        kwargs: Dict[str, object] = {}
        if "mode" in data:
            kwargs["mode"] = _choice(data["mode"], SCHEDULE_MODES, f"{path}.mode")
        for name in ("num_rounds", "num_periods", "max_mini_rounds"):
            if name in data:
                kwargs[name] = _as_int(data[name], f"{path}.{name}")
        if "periods" in data:
            raw = data["periods"]
            if not isinstance(raw, Sequence) or isinstance(raw, (str, bytes)):
                raise SpecError(
                    f"{path}.periods: expected a list of integers, got {raw!r}"
                )
            kwargs["periods"] = tuple(
                _as_int(p, f"{path}.periods[{i}]") for i, p in enumerate(raw)
            )
        return cls(**kwargs)


# ----------------------------------------------------------------------
# DynamicsSpec
# ----------------------------------------------------------------------
DYNAMICS_KINDS = ("poisson-churn", "periodic-flap", "random-waypoint", "trace")

#: Topology kinds that carry node positions (eligible for mobility and for
#: repositioning arrivals).
GEOMETRIC_TOPOLOGY_KINDS = ("random", "connected-random", "linear", "grid")

#: Spawn-key tag separating the dynamics event stream from the topology /
#: channel draw stream rooted at the same scenario seed.
_DYNAMICS_STREAM_TAG = 0xD1CE


@dataclass(frozen=True)
class DynamicsSpec:
    """Topology dynamics threaded between learning rounds.

    When present on a :class:`ScenarioSpec` (per-round schedules only), a
    deterministic, seeded event schedule is generated from the scenario
    seed and applied between rounds by
    :class:`~repro.sim.dynamic.DynamicSimulator`:

    * ``poisson-churn`` — ``Poisson(rate)`` node departures/arrivals per
      round (arrivals with probability ``arrival_bias`` when a departed
      node exists; the active population never drops below ``min_active``);
    * ``periodic-flap`` — a seeded ``flap_fraction`` of the conflict edges
      goes down/up every ``period`` rounds;
    * ``random-waypoint`` — every node walks toward uniform waypoints at
      ``speed`` distance units per round, sampled every ``step_every``
      rounds (geometric topologies only);
    * ``trace`` — the scripted ``trace`` events are replayed verbatim.
    """

    kind: str = "poisson-churn"
    #: Poisson churn: expected topology events per learning round.
    rate: float = 0.02
    arrival_bias: float = 0.5
    min_active: int = 1
    #: Periodic flap: rounds between toggles and edge fraction flapped.
    period: int = 50
    flap_fraction: float = 0.2
    #: Random waypoint: speed (distance units / round) and sampling stride.
    speed: float = 0.5
    step_every: int = 10
    #: Scripted events for ``kind='trace'``.
    trace: Tuple[object, ...] = ()

    def __post_init__(self) -> None:
        # Normalize trace entries to event objects so specs built from
        # Python literals and specs deserialized from JSON compare equal.
        if self.trace:
            from repro.dynamics.events import TopologyEvent, event_from_dict

            normalized = []
            for index, entry in enumerate(self.trace):
                if isinstance(entry, TopologyEvent):
                    normalized.append(entry)
                else:
                    try:
                        normalized.append(
                            event_from_dict(entry, f"dynamics.trace[{index}]")
                        )
                    except ValueError as err:
                        raise SpecError(str(err)) from None
            object.__setattr__(self, "trace", tuple(normalized))
        self.validate()

    def validate(self, path: str = "dynamics") -> None:
        """Raise :class:`SpecError` when the dynamics spec is ill-formed."""
        if self.kind not in DYNAMICS_KINDS:
            raise SpecError(
                f"{path}.kind: unknown dynamics kind {self.kind!r}; "
                f"choose one of {sorted(DYNAMICS_KINDS)}"
            )
        _reject_foreign_fields(
            self,
            {
                "rate": ("poisson-churn",),
                "arrival_bias": ("poisson-churn",),
                "min_active": ("poisson-churn",),
                "period": ("periodic-flap",),
                "flap_fraction": ("periodic-flap",),
                "speed": ("random-waypoint",),
                "step_every": ("random-waypoint",),
                "trace": ("trace",),
            },
            path,
        )
        if self.kind == "poisson-churn":
            if self.rate <= 0:
                raise SpecError(f"{path}.rate: must be positive, got {self.rate}")
            if not (0.0 <= self.arrival_bias <= 1.0):
                raise SpecError(
                    f"{path}.arrival_bias: must be in [0, 1], got {self.arrival_bias}"
                )
            if self.min_active < 1:
                raise SpecError(
                    f"{path}.min_active: at least one node must stay active, "
                    f"got {self.min_active}"
                )
        if self.kind == "periodic-flap":
            if self.period < 1:
                raise SpecError(f"{path}.period: must be >= 1, got {self.period}")
            if not (0.0 < self.flap_fraction <= 1.0):
                raise SpecError(
                    f"{path}.flap_fraction: must be in (0, 1], got {self.flap_fraction}"
                )
        if self.kind == "random-waypoint":
            if self.speed <= 0:
                raise SpecError(f"{path}.speed: must be positive, got {self.speed}")
            if self.step_every < 1:
                raise SpecError(
                    f"{path}.step_every: must be >= 1, got {self.step_every}"
                )
        if self.kind == "trace" and not self.trace:
            raise SpecError(
                f"{path}.trace: kind='trace' needs at least one scripted event"
            )
        from repro.dynamics.events import TopologyEvent

        for index, event in enumerate(self.trace):
            if not isinstance(event, TopologyEvent):  # pragma: no cover - normalized
                raise SpecError(
                    f"{path}.trace[{index}]: expected a topology event object"
                )
            try:
                event.validate(f"{path}.trace[{index}]")
            except ValueError as err:
                raise SpecError(str(err)) from None

    def build_schedule(self, graph, num_rounds: int, seed: int):
        """Generate this spec's deterministic event schedule.

        The event stream is spawned from ``(seed, dynamics tag)`` so it is
        independent of the topology / channel draws rooted at the same seed,
        and identical across replications of one scenario.
        """
        from repro.dynamics.events import (
            EventSchedule,
            periodic_flap_schedule,
            poisson_churn_schedule,
            random_waypoint_schedule,
        )

        rng = np.random.default_rng([seed, _DYNAMICS_STREAM_TAG])
        if self.kind == "poisson-churn":
            return poisson_churn_schedule(
                graph,
                num_rounds,
                rate=self.rate,
                rng=rng,
                arrival_bias=self.arrival_bias,
                min_active=self.min_active,
            )
        if self.kind == "periodic-flap":
            return periodic_flap_schedule(
                graph, num_rounds, period=self.period,
                flap_fraction=self.flap_fraction, rng=rng,
            )
        if self.kind == "random-waypoint":
            try:
                return random_waypoint_schedule(
                    graph, num_rounds, speed=self.speed,
                    step_every=self.step_every, rng=rng,
                )
            except ValueError as err:
                raise SpecError(f"dynamics: {err}") from None
        if self.kind == "trace":
            return EventSchedule(
                event for event in self.trace if event.round_index <= num_rounds
            )
        raise SpecError(f"unhandled dynamics kind {self.kind!r}")  # pragma: no cover

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (inverse of :meth:`from_dict`)."""
        return {
            "kind": self.kind,
            "rate": self.rate,
            "arrival_bias": self.arrival_bias,
            "min_active": self.min_active,
            "period": self.period,
            "flap_fraction": self.flap_fraction,
            "speed": self.speed,
            "step_every": self.step_every,
            "trace": [event.to_dict() for event in self.trace],
        }

    @classmethod
    def from_dict(cls, data, path: str = "dynamics") -> "DynamicsSpec":
        """Deserialize, raising :class:`SpecError` with the offending path."""
        data = _require_mapping(data, path)
        _check_keys(data, cls, path)
        kwargs: Dict[str, object] = {}
        if "kind" in data:
            kwargs["kind"] = _choice(data["kind"], DYNAMICS_KINDS, f"{path}.kind")
        for name in ("rate", "arrival_bias", "flap_fraction", "speed"):
            if name in data:
                kwargs[name] = _as_float(data[name], f"{path}.{name}")
        for name in ("min_active", "period", "step_every"):
            if name in data:
                kwargs[name] = _as_int(data[name], f"{path}.{name}")
        if "trace" in data:
            raw = data["trace"]
            if not isinstance(raw, Sequence) or isinstance(raw, (str, bytes)):
                raise SpecError(
                    f"{path}.trace: expected a list of event objects, got {raw!r}"
                )
            from repro.dynamics.events import event_from_dict

            events = []
            for index, entry in enumerate(raw):
                try:
                    events.append(event_from_dict(entry, f"{path}.trace[{index}]"))
                except ValueError as err:
                    raise SpecError(str(err)) from None
            kwargs["trace"] = tuple(events)
        return cls(**kwargs)


# ----------------------------------------------------------------------
# ReplicationSpec
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReplicationSpec:
    """How many independent replications, on how many worker threads.

    Replication randomness is streamed with ``SeedSequence.spawn`` from the
    scenario seed, so replication ``i`` sees the same stream regardless of
    the total count or the thread schedule.
    """

    replications: int = 1
    jobs: int = 1

    def __post_init__(self) -> None:
        self.validate()

    def validate(self, path: str = "replication") -> None:
        """Raise :class:`SpecError` when the replication plan is ill-formed."""
        if self.replications <= 0:
            raise SpecError(
                f"{path}.replications: must be positive, got {self.replications}"
            )
        if self.jobs <= 0:
            raise SpecError(f"{path}.jobs: must be positive, got {self.jobs}")

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (inverse of :meth:`from_dict`)."""
        return {"replications": self.replications, "jobs": self.jobs}

    @classmethod
    def from_dict(cls, data, path: str = "replication") -> "ReplicationSpec":
        """Deserialize, raising :class:`SpecError` with the offending path."""
        data = _require_mapping(data, path)
        _check_keys(data, cls, path)
        kwargs: Dict[str, object] = {}
        for name in ("replications", "jobs"):
            if name in data:
                kwargs[name] = _as_int(data[name], f"{path}.{name}")
        return cls(**kwargs)


# ----------------------------------------------------------------------
# TransportSpec
# ----------------------------------------------------------------------
TRANSPORT_KINDS = ("simulated", "asyncio")

TRANSPORT_LATENCY_KINDS = ("none", "uniform", "exponential")

#: Domain-separation tag mixed into the transport fault stream so it can
#: never collide with the topology/channel stream rooted at the same seed.
_TRANSPORT_STREAM_TAG = 0x7A57


@dataclass(frozen=True)
class TransportSpec:
    """Which message transport runs the distributed protocol.

    ``simulated`` (the default) is the in-process oracle network: instant,
    in-order, lossless k-hop delivery.  ``asyncio`` runs the same protocol
    over real asyncio streams between per-vertex tasks, with every control
    message crossing the JSON wire codec; its ``latency`` / ``reorder`` /
    ``drop`` knobs inject the delivery faults the oracle cannot express.
    Under the lossless in-order default the two transports produce
    bit-identical protocol envelopes (the equivalence contract of
    ``docs/transport.md``), so flipping ``kind`` is always safe.

    Only ``schedule.mode='protocol'`` scenarios are wired to non-simulated
    transports (the per-round and periodic regimes run the decision many
    times and stay on the oracle).
    """

    kind: str = "simulated"
    #: Delivery latency distribution (asyncio only): ``none`` keeps arrivals
    #: in send order, ``uniform``/``exponential`` draw virtual delays.
    latency: str = "none"
    #: Scale of the latency distribution, in broadcast ticks (asyncio only).
    latency_scale: float = 1.0
    #: Randomly permute same-time deliveries (asyncio only).
    reorder: bool = False
    #: Per-(message, recipient) drop probability (asyncio only).
    drop: float = 0.0
    #: Extra seed of the fault stream, mixed with the scenario seed
    #: (asyncio only); lets sweeps vary faults without moving the topology.
    seed: int = 0

    def __post_init__(self) -> None:
        self.validate()

    @property
    def is_lossless(self) -> bool:
        """Whether every broadcast reaches every in-range recipient."""
        return self.drop == 0.0

    def validate(self, path: str = "transport") -> None:
        """Raise :class:`SpecError` when the transport spec is ill-formed."""
        if self.kind not in TRANSPORT_KINDS:
            raise SpecError(
                f"{path}.kind: unknown transport kind {self.kind!r}; "
                f"choose one of {sorted(TRANSPORT_KINDS)}"
            )
        if self.latency not in TRANSPORT_LATENCY_KINDS:
            raise SpecError(
                f"{path}.latency: unknown latency kind {self.latency!r}; "
                f"choose one of {sorted(TRANSPORT_LATENCY_KINDS)}"
            )
        _reject_foreign_fields(
            self,
            {
                "latency": ("asyncio",),
                "latency_scale": ("asyncio",),
                "reorder": ("asyncio",),
                "drop": ("asyncio",),
                "seed": ("asyncio",),
            },
            path,
        )
        if not (0.0 <= self.drop < 1.0):
            raise SpecError(f"{path}.drop: must be in [0, 1), got {self.drop}")
        if self.latency_scale <= 0:
            raise SpecError(
                f"{path}.latency_scale: must be positive, got {self.latency_scale}"
            )
        if self.latency_scale != 1.0 and self.latency == "none":
            raise SpecError(
                f"{path}.latency_scale: only meaningful with "
                f"latency='uniform'/'exponential' (got latency='none')"
            )
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise SpecError(f"{path}.seed: expected an integer, got {self.seed!r}")
        if self.seed < 0:
            raise SpecError(f"{path}.seed: must be non-negative, got {self.seed}")

    def build(
        self,
        adjacency,
        *,
        run_seed: int = 0,
        precomputed_neighborhoods=None,
    ):
        """Materialize the :class:`~repro.distributed.transport.Transport`.

        ``run_seed`` is the scenario seed; the asyncio fault stream is rooted
        at ``(run_seed, tag, transport.seed)`` so it is independent of the
        topology/channel draws.
        """
        from repro.distributed.runtime import AsyncioTransport
        from repro.distributed.transport import SimulatedTransport

        if self.kind == "simulated":
            return SimulatedTransport(
                adjacency, precomputed_neighborhoods=precomputed_neighborhoods
            )
        return AsyncioTransport(
            adjacency,
            precomputed_neighborhoods=precomputed_neighborhoods,
            latency=self.latency,
            latency_scale=self.latency_scale,
            reorder=self.reorder,
            drop_probability=self.drop,
            seed=[run_seed, _TRANSPORT_STREAM_TAG, self.seed],
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (inverse of :meth:`from_dict`)."""
        return {
            "kind": self.kind,
            "latency": self.latency,
            "latency_scale": self.latency_scale,
            "reorder": self.reorder,
            "drop": self.drop,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data, path: str = "transport") -> "TransportSpec":
        """Deserialize, raising :class:`SpecError` with the offending path."""
        data = _require_mapping(data, path)
        _check_keys(data, cls, path)
        kwargs: Dict[str, object] = {}
        if "kind" in data:
            kwargs["kind"] = _choice(data["kind"], TRANSPORT_KINDS, f"{path}.kind")
        if "latency" in data:
            kwargs["latency"] = _choice(
                data["latency"], TRANSPORT_LATENCY_KINDS, f"{path}.latency"
            )
        if "latency_scale" in data:
            kwargs["latency_scale"] = _as_float(
                data["latency_scale"], f"{path}.latency_scale"
            )
        if "reorder" in data:
            kwargs["reorder"] = _as_bool(data["reorder"], f"{path}.reorder")
        if "drop" in data:
            kwargs["drop"] = _as_float(data["drop"], f"{path}.drop")
        if "seed" in data:
            kwargs["seed"] = _as_int(data["seed"], f"{path}.seed")
        return cls(**kwargs)


# ----------------------------------------------------------------------
# FaultSpec
# ----------------------------------------------------------------------
#: Byzantine behaviors selectable in a spec.  The concrete behaviors live in
#: :data:`repro.faults.plan.BYZANTINE_BEHAVIORS`; ``mixed`` assigns them
#: round-robin over the Byzantine vertices.
FAULT_BEHAVIORS = (
    "weight-inflation",
    "winner-usurpation",
    "conflicting-decisions",
    "mixed",
)

#: Domain-separation tag of the fault-plan stream, mixed with the scenario
#: seed (and the sweep cell) so fault draws never collide with the topology,
#: channel, dynamics or transport streams rooted at the same seed.
_FAULTS_STREAM_TAG = 0xFA17


@dataclass(frozen=True)
class FaultSpec:
    """Node faults injected into the distributed strategy decision.

    ``crash`` and ``byzantine`` are vertex fractions of the extended
    conflict graph (rounded to counts per sweep cell, at least one vertex
    when positive).  Crash-stop vertices go silent at a seeded phase
    boundary within mini-rounds ``0..max_crash_round``; Byzantine vertices
    follow ``behavior``.  With ``quorum=True`` the honest vertices run the
    evidence-checking mitigation: claims are cross-validated, inconsistent
    senders are excluded once ``quorum_threshold`` distinct accusers agree,
    and silent blockers are suspected crashed after the Algorithm-Two
    termination bound with slack ``eps``.

    A spec with both fractions zero describes the honest protocol: the
    runner then takes the exact honest code path, so ``f=0`` envelopes are
    bit-identical to runs without a ``faults`` node.
    """

    #: Fraction of vertices that crash-stop mid-protocol.
    crash: float = 0.0
    #: Fraction of vertices that lie (disjoint from the crashed set).
    byzantine: float = 0.0
    #: Byzantine strategy (byzantine > 0 only).
    behavior: str = "mixed"
    #: Latest mini-round a crash can be scheduled at (crash > 0 only).
    max_crash_round: int = 3
    #: Enable the quorum/evidence-checking mitigation in honest vertices.
    quorum: bool = False
    #: Distinct accusers needed for remote exclusion (quorum only).
    quorum_threshold: int = 2
    #: Approximation slack of the termination bound (quorum only).
    eps: float = 0.05
    #: Extra seed of the fault-plan stream, mixed with the scenario seed.
    seed: int = 0

    def __post_init__(self) -> None:
        self.validate()

    @property
    def is_active(self) -> bool:
        """Whether any vertex is actually faulty (``f > 0``)."""
        return self.crash > 0.0 or self.byzantine > 0.0

    def validate(self, path: str = "faults") -> None:
        """Raise :class:`SpecError` when the fault spec is ill-formed."""
        for name in ("crash", "byzantine"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SpecError(f"{path}.{name}: expected a number, got {value!r}")
            if not (0.0 <= value < 1.0):
                raise SpecError(f"{path}.{name}: must be in [0, 1), got {value}")
        if self.crash + self.byzantine > 0.5:
            raise SpecError(
                f"{path}: crash + byzantine must be <= 0.5 (the termination "
                f"bound needs an honest majority), got "
                f"{self.crash} + {self.byzantine}"
            )
        if self.behavior not in FAULT_BEHAVIORS:
            raise SpecError(
                f"{path}.behavior: unknown behavior {self.behavior!r}; "
                f"choose one of {sorted(FAULT_BEHAVIORS)}"
            )
        if self.byzantine == 0.0 and self.behavior != "mixed":
            raise SpecError(
                f"{path}.behavior: only meaningful with byzantine > 0 "
                f"(got byzantine={self.byzantine})"
            )
        if isinstance(self.max_crash_round, bool) or not isinstance(
            self.max_crash_round, int
        ):
            raise SpecError(
                f"{path}.max_crash_round: expected an integer, "
                f"got {self.max_crash_round!r}"
            )
        if self.max_crash_round < 0:
            raise SpecError(
                f"{path}.max_crash_round: must be >= 0, got {self.max_crash_round}"
            )
        if self.crash == 0.0 and self.max_crash_round != 3:
            raise SpecError(
                f"{path}.max_crash_round: only meaningful with crash > 0 "
                f"(got crash={self.crash})"
            )
        if not isinstance(self.quorum, bool):
            raise SpecError(
                f"{path}.quorum: expected true/false, got {self.quorum!r}"
            )
        if isinstance(self.quorum_threshold, bool) or not isinstance(
            self.quorum_threshold, int
        ):
            raise SpecError(
                f"{path}.quorum_threshold: expected an integer, "
                f"got {self.quorum_threshold!r}"
            )
        if self.quorum_threshold < 1:
            raise SpecError(
                f"{path}.quorum_threshold: must be >= 1, "
                f"got {self.quorum_threshold}"
            )
        if isinstance(self.eps, bool) or not isinstance(self.eps, (int, float)):
            raise SpecError(f"{path}.eps: expected a number, got {self.eps!r}")
        if not (0.0 < self.eps < 1.0):
            raise SpecError(f"{path}.eps: must be in (0, 1), got {self.eps}")
        if not self.quorum:
            if self.quorum_threshold != 2:
                raise SpecError(
                    f"{path}.quorum_threshold: only meaningful with quorum=true"
                )
            if self.eps != 0.05:
                raise SpecError(f"{path}.eps: only meaningful with quorum=true")
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise SpecError(f"{path}.seed: expected an integer, got {self.seed!r}")
        if self.seed < 0:
            raise SpecError(f"{path}.seed: must be non-negative, got {self.seed}")

    def build_plan(
        self, num_vertices: int, *, run_seed: int, cell: Tuple[int, int]
    ):
        """The seeded :class:`~repro.faults.plan.FaultPlan` of one sweep cell.

        The plan stream is rooted at ``(scenario seed, faults tag,
        faults.seed, num_nodes, num_channels)``: independent of every other
        stream, stable across transports, distinct per sweep cell.
        """
        from repro.faults.plan import generate_fault_plan

        rng = np.random.default_rng(
            [run_seed, _FAULTS_STREAM_TAG, self.seed, cell[0], cell[1]]
        )
        return generate_fault_plan(
            num_vertices,
            crash_fraction=self.crash,
            byzantine_fraction=self.byzantine,
            behavior=self.behavior,
            max_crash_round=self.max_crash_round,
            rng=rng,
        )

    def build_quorum(self):
        """The :class:`~repro.faults.quorum.QuorumConfig`, or ``None``."""
        from repro.faults.quorum import QuorumConfig

        if not self.quorum:
            return None
        return QuorumConfig(threshold=self.quorum_threshold, eps=self.eps)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (inverse of :meth:`from_dict`)."""
        return {
            "crash": self.crash,
            "byzantine": self.byzantine,
            "behavior": self.behavior,
            "max_crash_round": self.max_crash_round,
            "quorum": self.quorum,
            "quorum_threshold": self.quorum_threshold,
            "eps": self.eps,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data, path: str = "faults") -> "FaultSpec":
        """Deserialize, raising :class:`SpecError` with the offending path."""
        data = _require_mapping(data, path)
        _check_keys(data, cls, path)
        kwargs: Dict[str, object] = {}
        for name in ("crash", "byzantine", "eps"):
            if name in data:
                kwargs[name] = _as_float(data[name], f"{path}.{name}")
        if "behavior" in data:
            kwargs["behavior"] = _choice(
                data["behavior"], FAULT_BEHAVIORS, f"{path}.behavior"
            )
        for name in ("max_crash_round", "quorum_threshold", "seed"):
            if name in data:
                kwargs[name] = _as_int(data[name], f"{path}.{name}")
        if "quorum" in data:
            kwargs["quorum"] = _as_bool(data["quorum"], f"{path}.quorum")
        try:
            return cls(**kwargs)
        except SpecError as err:
            # Re-prefix validation errors (all start with "faults." or
            # "faults:") with the caller's path.
            raise SpecError(str(err).replace("faults", path, 1)) from None


# ----------------------------------------------------------------------
# ScenarioSpec
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-described experiment scenario.

    ``network_sweep`` (protocol mode only) re-runs the scenario once per
    ``(num_nodes, num_channels)`` pair with the topology acting as a
    template — the Fig. 6 / complexity sweeps.  ``alpha`` is the assumed
    approximation ratio of the beta-regret benchmark and ``compute_optimal``
    controls whether the optimal fixed-strategy throughput ``R_1`` is brute
    forced before a per-round run (only feasible for small networks).
    """

    name: str
    seed: int = 2014
    description: str = ""
    topology: TopologySpec = field(default_factory=TopologySpec)
    channels: ChannelSpec = field(default_factory=ChannelSpec)
    policies: Tuple[PolicySpec, ...] = (
        PolicySpec(kind="algorithm2"),
        PolicySpec(kind="llr"),
    )
    schedule: ScheduleSpec = field(default_factory=ScheduleSpec)
    #: Topology dynamics threaded between rounds (per-round schedules only).
    dynamics: Optional[DynamicsSpec] = None
    #: Message transport of the distributed protocol (protocol mode only
    #: for non-simulated kinds).  Never ``None`` so ``--set transport.kind``
    #: overrides always have a node to land on.
    transport: TransportSpec = field(default_factory=TransportSpec)
    #: Crash-stop / Byzantine faults in the strategy decision (protocol
    #: mode only).  ``None`` and ``f=0`` both mean the honest protocol.
    faults: Optional[FaultSpec] = None
    replication: ReplicationSpec = field(default_factory=ReplicationSpec)
    network_sweep: Tuple[Tuple[int, int], ...] = ()
    #: Approximation ratio assumed by the beta-regret benchmark (Fig. 7b).
    alpha: float = 4.0
    #: Brute-force the optimal fixed strategy before per-round runs.
    compute_optimal: bool = False

    def __post_init__(self) -> None:
        self.validate()

    def validate(self, path: str = "scenario") -> None:
        """Raise :class:`SpecError` when the scenario is ill-formed."""
        if not self.name or not isinstance(self.name, str):
            raise SpecError(f"{path}.name: every scenario needs a non-empty name")
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise SpecError(f"{path}.seed: expected an integer, got {self.seed!r}")
        if self.seed < 0:
            raise SpecError(
                f"{path}.seed: must be non-negative (numpy seeds reject "
                f"negative integers), got {self.seed}"
            )
        self.topology.validate(f"{path}.topology")
        self.channels.validate(f"{path}.channels")
        self.schedule.validate(f"{path}.schedule")
        self.transport.validate(f"{path}.transport")
        self.replication.validate(f"{path}.replication")
        if self.transport.kind != "simulated" and self.schedule.mode != "protocol":
            raise SpecError(
                f"{path}.transport.kind: the {self.transport.kind!r} transport "
                f"is only wired into schedule.mode='protocol' runs "
                f"(got {self.schedule.mode!r})"
            )
        if not self.policies:
            raise SpecError(
                f"{path}.policies: at least one policy is required (protocol "
                "scenarios use the first policy's r / solver for the strategy "
                "decision)"
            )
        labels = []
        for index, policy in enumerate(self.policies):
            policy.validate(f"{path}.policies[{index}]")
            labels.append(policy.display_label)
        duplicates = sorted({label for label in labels if labels.count(label) > 1})
        if duplicates:
            raise SpecError(
                f"{path}.policies: duplicate policy label(s) {duplicates}; "
                "give each policy a distinct 'label'"
            )
        if self.alpha <= 0:
            raise SpecError(f"{path}.alpha: must be positive, got {self.alpha}")
        if self.network_sweep:
            if self.schedule.mode != "protocol":
                raise SpecError(
                    f"{path}.network_sweep: only supported with "
                    f"schedule.mode='protocol' (got {self.schedule.mode!r})"
                )
            if self.topology.kind not in ("random", "connected-random"):
                raise SpecError(
                    f"{path}.network_sweep: needs a scalable topology kind "
                    f"('random' or 'connected-random'), got {self.topology.kind!r}"
                )
            for index, cell in enumerate(self.network_sweep):
                if (
                    len(cell) != 2
                    or any(isinstance(v, bool) or not isinstance(v, int) for v in cell)
                    or any(v <= 0 for v in cell)
                ):
                    raise SpecError(
                        f"{path}.network_sweep[{index}]: expected a "
                        f"[num_nodes, num_channels] pair of positive integers, "
                        f"got {cell!r}"
                    )
        if self.channels.kind == "mean-matrix" and self.network_sweep:
            raise SpecError(
                f"{path}: a pinned channels.means matrix cannot be combined "
                "with a network_sweep (the shape changes per cell)"
            )
        if (
            self.channels.is_stateful
            and self.schedule.mode != "protocol"
            and self.replication.replications > 1
        ):
            raise SpecError(
                f"{path}.replication.replications: stateful channel models "
                f"(kind={self.channels.kind!r}) couple successive draws and "
                "cannot be averaged over replications; set replications=1"
            )
        if self.dynamics is not None:
            self.dynamics.validate(f"{path}.dynamics")
            if self.schedule.mode != "per-round":
                raise SpecError(
                    f"{path}.dynamics: topology dynamics need "
                    f"schedule.mode='per-round' (got {self.schedule.mode!r})"
                )
            if self.network_sweep:
                raise SpecError(
                    f"{path}.dynamics: cannot be combined with a network_sweep"
                )
            for index, policy in enumerate(self.policies):
                if policy.kind == "oracle":
                    raise SpecError(
                        f"{path}.policies[{index}]: the static oracle has no "
                        "meaning under topology dynamics (the optimum changes "
                        "with the topology); use compute_optimal for the "
                        "dynamic-oracle benchmark instead"
                    )
            if (
                self.dynamics.kind == "random-waypoint"
                and self.topology.kind not in GEOMETRIC_TOPOLOGY_KINDS
            ):
                raise SpecError(
                    f"{path}.dynamics.kind: random-waypoint mobility needs a "
                    f"geometric topology ({sorted(GEOMETRIC_TOPOLOGY_KINDS)}), "
                    f"got topology.kind={self.topology.kind!r}"
                )
        if self.faults is not None:
            self.faults.validate(f"{path}.faults")
            if self.schedule.mode != "protocol":
                raise SpecError(
                    f"{path}.faults: fault injection targets the distributed "
                    f"strategy decision and needs schedule.mode='protocol' "
                    f"(got {self.schedule.mode!r})"
                )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "description": self.description,
            "topology": self.topology.to_dict(),
            "channels": self.channels.to_dict(),
            "policies": [policy.to_dict() for policy in self.policies],
            "schedule": self.schedule.to_dict(),
            "dynamics": self.dynamics.to_dict() if self.dynamics is not None else None,
            "transport": self.transport.to_dict(),
            "faults": self.faults.to_dict() if self.faults is not None else None,
            "replication": self.replication.to_dict(),
            "network_sweep": [list(cell) for cell in self.network_sweep],
            "alpha": self.alpha,
            "compute_optimal": self.compute_optimal,
        }

    @classmethod
    def from_dict(cls, data, path: str = "scenario") -> "ScenarioSpec":
        """Deserialize, raising :class:`SpecError` with the offending path."""
        data = _require_mapping(data, path)
        _check_keys(data, cls, path)
        if "name" not in data:
            raise SpecError(f"{path}.name: every scenario needs a name")
        kwargs: Dict[str, object] = {"name": _as_str(data["name"], f"{path}.name")}
        if "seed" in data:
            kwargs["seed"] = _as_int(data["seed"], f"{path}.seed")
        if "description" in data:
            kwargs["description"] = _as_str(data["description"], f"{path}.description")
        if "topology" in data:
            kwargs["topology"] = TopologySpec.from_dict(
                data["topology"], f"{path}.topology"
            )
        if "channels" in data:
            kwargs["channels"] = ChannelSpec.from_dict(
                data["channels"], f"{path}.channels"
            )
        if "policies" in data:
            raw = data["policies"]
            if not isinstance(raw, Sequence) or isinstance(raw, (str, bytes)):
                raise SpecError(
                    f"{path}.policies: expected a list of policy objects, got {raw!r}"
                )
            kwargs["policies"] = tuple(
                PolicySpec.from_dict(entry, f"{path}.policies[{i}]")
                for i, entry in enumerate(raw)
            )
        if "schedule" in data:
            kwargs["schedule"] = ScheduleSpec.from_dict(
                data["schedule"], f"{path}.schedule"
            )
        if data.get("dynamics") is not None:
            kwargs["dynamics"] = DynamicsSpec.from_dict(
                data["dynamics"], f"{path}.dynamics"
            )
        if "transport" in data:
            kwargs["transport"] = TransportSpec.from_dict(
                data["transport"], f"{path}.transport"
            )
        if data.get("faults") is not None:
            kwargs["faults"] = FaultSpec.from_dict(data["faults"], f"{path}.faults")
        if "replication" in data:
            kwargs["replication"] = ReplicationSpec.from_dict(
                data["replication"], f"{path}.replication"
            )
        if "network_sweep" in data:
            raw = data["network_sweep"]
            if not isinstance(raw, Sequence) or isinstance(raw, (str, bytes)):
                raise SpecError(
                    f"{path}.network_sweep: expected a list of [N, M] pairs, got {raw!r}"
                )
            sweep = []
            for i, cell in enumerate(raw):
                if not isinstance(cell, Sequence) or isinstance(cell, (str, bytes)):
                    raise SpecError(
                        f"{path}.network_sweep[{i}]: expected an [N, M] pair, got {cell!r}"
                    )
                sweep.append(
                    tuple(
                        _as_int(v, f"{path}.network_sweep[{i}][{j}]")
                        for j, v in enumerate(cell)
                    )
                )
            kwargs["network_sweep"] = tuple(sweep)
        if "alpha" in data:
            kwargs["alpha"] = _as_float(data["alpha"], f"{path}.alpha")
        if "compute_optimal" in data:
            kwargs["compute_optimal"] = _as_bool(
                data["compute_optimal"], f"{path}.compute_optimal"
            )
        try:
            return cls(**kwargs)
        except SpecError as err:
            # Re-prefix cross-field validation errors with the caller's path.
            raise SpecError(str(err).replace("scenario.", f"{path}.", 1)) from None

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def build(self):
        """Materialize the scenario's environment.

        Draws the topology and channel state from one ``default_rng(seed)``
        stream (the same draw order the legacy experiments used, so presets
        reproduce the historical environments bit for bit) and wires them
        into a :class:`~repro.api.ChannelAccessSystem` rooted at the same
        seed.  Returns ``(system, policies)`` where ``policies`` maps each
        display label to a zero-argument policy factory.

        Only meaningful for simulation modes; protocol scenarios are
        materialized per sweep cell by the runner instead.
        """
        from repro.api import ChannelAccessSystem

        rng = np.random.default_rng(self.seed)
        graph = self.topology.build(rng)
        channels = self.channels.build_state(
            graph.num_nodes, graph.num_channels, rng
        )
        system = ChannelAccessSystem(graph, channels, seed=self.seed)
        factories = {
            policy.display_label: (lambda p=policy: p.build(system))
            for policy in self.policies
        }
        return system, factories

    def run(self):
        """Run this scenario (delegates to :func:`repro.spec.runner.run_scenario`)."""
        from repro.spec.runner import run_scenario

        return run_scenario(self)
