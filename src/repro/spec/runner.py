"""Run a :class:`~repro.spec.scenario.ScenarioSpec` and package the outcome.

Every scenario — per-round bandit run, periodic stale-weight run, or pure
strategy-decision protocol run — produces the same
:class:`ExperimentResult` envelope: the spec echo, per-replication series,
replication-averaged series, per-cell scalar records, a scalar summary and
the wall clock.  The envelope serializes to stable JSON
(``repro.scenario-result/v1``) so benchmark trajectories, plotting layers
and services all consume one schema.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping

import numpy as np

from repro.core.bounds import theorem1_regret_bound
from repro.distributed.costs import theoretical_message_bound, theoretical_space_bound
from repro.distributed.ptas import DistributedRobustPTAS
from repro.graph.extended import ExtendedConflictGraph
from repro.graph.neighborhoods import r_hop_neighborhood
from repro.mwis.greedy import GreedyMWISSolver
from repro.obs import current_observer
from repro.reporting import render_series, render_table
from repro.sim.batch import child_seed_sequences
from repro.sim.timing import TimingConfig
from repro.spec.scenario import ScenarioSpec, SpecError

__all__ = [
    "ExperimentResult",
    "run_scenario",
    "run_scenario_replication",
    "merge_replication_results",
    "format_result",
    "RESULT_SCHEMA",
]

#: Schema identifier embedded in every serialized result.
RESULT_SCHEMA = "repro.scenario-result/v1"


@dataclass
class ExperimentResult:
    """Uniform envelope around one scenario run.

    ``series`` holds replication-averaged traces keyed
    ``metric[policy]`` (plus ``[y=period]`` for periodic scenarios and
    ``[NxM]`` for protocol sweeps); ``replication_series`` holds the same
    keys with one row per replication; ``records`` holds per-cell scalar
    measurements (period efficiencies, protocol costs); ``summary`` holds
    scenario-level scalars (theta, R_1, the Theorem-1 bound, ...).

    ``artifacts`` carries the raw runtime objects (batches, periodic runs,
    the materialized system) for in-process consumers; it is **not**
    serialized.
    """

    scenario: str
    mode: str
    spec: Dict[str, object]
    summary: Dict[str, float] = field(default_factory=dict)
    series: Dict[str, List[float]] = field(default_factory=dict)
    replication_series: Dict[str, List[List[float]]] = field(default_factory=dict)
    records: Dict[str, Dict[str, float]] = field(default_factory=dict)
    wall_clock_s: float = 0.0
    artifacts: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (``artifacts`` excluded)."""
        return {
            "schema": RESULT_SCHEMA,
            "scenario": self.scenario,
            "mode": self.mode,
            "spec": self.spec,
            "summary": dict(self.summary),
            "series": {k: list(v) for k, v in self.series.items()},
            "replication_series": {
                k: [list(row) for row in rows]
                for k, rows in self.replication_series.items()
            },
            "records": {k: dict(v) for k, v in self.records.items()},
            "wall_clock_s": self.wall_clock_s,
        }

    def to_json(self, indent: int = 2) -> str:
        """Serialize to the stable ``repro.scenario-result/v1`` JSON schema."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data) -> "ExperimentResult":
        """Strictly validate and load a serialized result envelope."""
        if not isinstance(data, Mapping):
            raise SpecError(
                f"result: expected a JSON object, got {type(data).__name__}"
            )
        schema = data.get("schema")
        if schema != RESULT_SCHEMA:
            raise SpecError(
                f"result.schema: expected {RESULT_SCHEMA!r}, got {schema!r}"
            )
        required = {
            "schema",
            "scenario",
            "mode",
            "spec",
            "summary",
            "series",
            "replication_series",
            "records",
            "wall_clock_s",
        }
        missing = sorted(required - set(data))
        if missing:
            raise SpecError(f"result: missing field(s) {missing}")
        unknown = sorted(set(data) - required)
        if unknown:
            raise SpecError(f"result: unknown field(s) {unknown}")
        if not isinstance(data["scenario"], str) or not data["scenario"]:
            raise SpecError("result.scenario: expected a non-empty string")
        if not isinstance(data["mode"], str):
            raise SpecError("result.mode: expected a string")
        for key in ("summary", "series", "replication_series", "records", "spec"):
            if not isinstance(data[key], Mapping):
                raise SpecError(f"result.{key}: expected a JSON object")
        for name, values in data["series"].items():
            if not isinstance(values, list) or any(
                not isinstance(v, (int, float)) or isinstance(v, bool) for v in values
            ):
                raise SpecError(
                    f"result.series[{name!r}]: expected a list of numbers"
                )
        for name, rows in data["replication_series"].items():
            if not isinstance(rows, list) or any(
                not isinstance(row, list) for row in rows
            ):
                raise SpecError(
                    f"result.replication_series[{name!r}]: expected a list of "
                    "per-replication rows"
                )
        if not isinstance(data["wall_clock_s"], (int, float)):
            raise SpecError("result.wall_clock_s: expected a number")
        return cls(
            scenario=data["scenario"],
            mode=data["mode"],
            spec=dict(data["spec"]),
            summary=dict(data["summary"]),
            series={k: list(v) for k, v in data["series"].items()},
            replication_series={
                k: [list(row) for row in rows]
                for k, rows in data["replication_series"].items()
            },
            records={k: dict(v) for k, v in data["records"].items()},
            wall_clock_s=float(data["wall_clock_s"]),
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        """Inverse of :meth:`to_json` (strictly validated)."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as err:
            raise SpecError(f"result: invalid JSON ({err})") from None
        return cls.from_dict(data)

    def spec_object(self) -> ScenarioSpec:
        """Rehydrate the echoed spec as a :class:`ScenarioSpec`."""
        return ScenarioSpec.from_dict(self.spec)


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
def run_scenario(spec: ScenarioSpec) -> ExperimentResult:
    """Run one scenario and return its :class:`ExperimentResult` envelope."""
    spec.validate(spec.name)
    started_at = time.perf_counter()
    obs = current_observer()
    with obs.span("run", scenario=spec.name) as run_span:
        if spec.dynamics is not None:
            result = _run_dynamic(spec)
        elif spec.schedule.mode == "per-round":
            result = _run_per_round(spec)
        elif spec.schedule.mode == "periodic":
            result = _run_periodic(spec)
        elif spec.schedule.mode == "protocol":
            result = _run_protocol(spec)
        else:  # pragma: no cover - validate() rejects unknown modes
            raise SpecError(
                f"{spec.name}: unhandled schedule mode {spec.schedule.mode!r}"
            )
        run_span.set_attrs(mode=result.mode)
    result.wall_clock_s = time.perf_counter() - started_at
    if obs.enabled:
        # The observer rides along for in-process consumers (CLI trace
        # export); artifacts never serialize, so envelopes stay identical.
        result.artifacts["observability"] = obs
    return result


def _per_round_policy_series(
    result: ExperimentResult,
    label: str,
    expected_matrix: np.ndarray,
    theta: float,
    optimal_value,
    alpha: float,
) -> None:
    """Fill one policy's per-round series from its ``(R, T)`` reward matrix.

    Shared by the direct runner and the sweep layer's replication merge so a
    merged envelope is bit-identical to a single-process run.
    """
    result.replication_series[f"expected_reward[{label}]"] = [
        row.tolist() for row in expected_matrix
    ]
    expected = expected_matrix.mean(axis=0)
    effective = theta * expected
    result.series[f"expected_reward[{label}]"] = expected.tolist()
    result.series[f"effective_throughput[{label}]"] = effective.tolist()
    if optimal_value is not None:
        practical = optimal_value - effective
        benchmark = theta * optimal_value / alpha
        result.series[f"practical_regret[{label}]"] = practical.tolist()
        result.series[f"beta_regret[{label}]"] = (benchmark - effective).tolist()
        result.series[f"cumulative_practical_regret[{label}]"] = np.cumsum(
            practical
        ).tolist()


def _run_per_round(
    spec: ScenarioSpec,
    replications: "int | None" = None,
    first_replication: int = 0,
) -> ExperimentResult:
    """Fig. 7 regime: per-slot decisions through ``simulate_batch``.

    ``replications``/``first_replication`` narrow the run to a window of the
    spec's replication streams (the sweep layer runs one replication per
    work unit); the default runs the spec's full replication plan.
    """
    if replications is None:
        replications = spec.replication.replications
    system, factories = spec.build()
    optimal_value = system.optimal_value() if spec.compute_optimal else None
    theta = system.timing.theta
    result = ExperimentResult(
        scenario=spec.name, mode="per-round", spec=spec.to_dict()
    )
    result.summary["theta"] = float(theta)
    result.summary["alpha"] = float(spec.alpha)
    result.summary["replications"] = float(replications)
    if optimal_value is not None:
        result.summary["optimal_value"] = float(optimal_value)
        result.summary["theorem1_bound"] = float(
            theorem1_regret_bound(
                horizon=spec.schedule.num_rounds,
                num_nodes=system.conflict_graph.num_nodes,
                num_arms=system.extended_graph.num_vertices,
                beta=spec.alpha,
            )
        )
    batches = {}
    simulated_wall_clock = 0.0
    run_system, run_factories = system, factories
    for index, label in enumerate(factories):
        if index > 0 and spec.channels.is_stateful:
            # Stateful channel models accumulate chain/cursor state while a
            # policy samples them; replay the identical construction so every
            # policy faces the same fresh environment and the head-to-head
            # comparison stays valid.
            run_system, run_factories = spec.build()
        factory = run_factories[label]
        batch = run_system.simulate_batch(
            lambda index: factory(),
            num_rounds=spec.schedule.num_rounds,
            replications=replications,
            jobs=spec.replication.jobs,
            optimal_value=optimal_value,
            first_replication=first_replication,
        )
        batches[label] = batch
        simulated_wall_clock += batch.total_wall_clock()
        _per_round_policy_series(
            result,
            label,
            batch.expected_reward_matrix(),
            theta,
            optimal_value,
            spec.alpha,
        )
    result.summary["simulated_wall_clock_s"] = simulated_wall_clock
    result.artifacts["system"] = system
    result.artifacts["batches"] = batches
    result.artifacts["optimal_value"] = optimal_value
    return result


def run_scenario_replication(
    spec: ScenarioSpec, replication_index: int
) -> ExperimentResult:
    """Run exactly one replication of a per-round scenario.

    The replication consumes the same seed stream it would inside the full
    ``R``-replication run (stream ``replication_index`` spawned from the
    scenario seed), so its trace is bit-identical to the corresponding row
    of :func:`run_scenario` — this is the sweep layer's work unit.  Only
    per-round schedules shard to replication granularity; periodic and
    protocol scenarios execute as whole-scenario units.
    """
    spec.validate(spec.name)
    if spec.schedule.mode != "per-round" or spec.dynamics is not None:
        raise SpecError(
            f"{spec.name}: run_scenario_replication only supports per-round "
            f"schedules without dynamics (got mode={spec.schedule.mode!r}, "
            f"dynamics={'set' if spec.dynamics is not None else 'none'}); "
            "run the whole scenario instead"
        )
    if replication_index < 0:
        raise SpecError(
            f"{spec.name}: replication_index must be non-negative, "
            f"got {replication_index}"
        )
    started_at = time.perf_counter()
    result = _run_per_round(
        spec, replications=1, first_replication=replication_index
    )
    result.wall_clock_s = time.perf_counter() - started_at
    return result


def merge_replication_results(
    spec: ScenarioSpec, results: List["ExperimentResult"]
) -> ExperimentResult:
    """Stitch single-replication envelopes back into one scenario envelope.

    ``results`` must hold one per-round envelope per replication, ordered by
    replication index.  The merged series are recomputed with the same
    numpy expressions the direct runner uses, so every deterministic field
    (series, replication series, summary minus wall clocks) is bit-identical
    to ``run_scenario(spec)``; wall clocks are summed.
    """
    if not results:
        raise SpecError(f"{spec.name}: cannot merge zero replication results")
    if spec.schedule.mode != "per-round" or spec.dynamics is not None:
        raise SpecError(
            f"{spec.name}: merge_replication_results only supports per-round "
            f"schedules without dynamics (got {spec.schedule.mode!r})"
        )
    base = results[0]
    merged = ExperimentResult(
        scenario=spec.name, mode="per-round", spec=spec.to_dict()
    )
    merged.summary = dict(base.summary)
    merged.summary["replications"] = float(len(results))
    merged.summary["simulated_wall_clock_s"] = float(
        sum(r.summary.get("simulated_wall_clock_s", 0.0) for r in results)
    )
    theta = base.summary["theta"]
    alpha = base.summary["alpha"]
    optimal_value = base.summary.get("optimal_value")
    for policy in spec.policies:
        label = policy.display_label
        key = f"expected_reward[{label}]"
        rows = []
        for index, result in enumerate(results):
            if key not in result.replication_series:
                raise SpecError(
                    f"{spec.name}: replication {index} is missing the "
                    f"{key!r} series; cannot merge"
                )
            rows.extend(result.replication_series[key])
        _per_round_policy_series(
            merged,
            label,
            np.asarray(rows, dtype=float),
            theta,
            optimal_value,
            alpha,
        )
    merged.wall_clock_s = float(sum(r.wall_clock_s for r in results))
    return merged


def _replication_seeds(root_seed: int, replications: int) -> List[object]:
    """System seeds for the replications of one periodic experiment cell.

    A single replication uses the cell's ``root_seed`` directly (the system
    then consumes child 0 of it); multiple replications get spawn children
    of the same root — the stream-derivation scheme of
    :func:`repro.sim.batch.child_seed_sequences`, so replication ``i`` sees
    the same streams regardless of the replication count.
    """
    if replications == 1:
        return [root_seed]
    return list(child_seed_sequences(root_seed, replications))


def _run_periodic(spec: ScenarioSpec) -> ExperimentResult:
    """Fig. 8 regime: one decision per ``y``-slot period."""
    from repro.api import ChannelAccessSystem

    rng = np.random.default_rng(spec.seed)
    graph = spec.topology.build(rng)
    channels = spec.channels.build_state(graph.num_nodes, graph.num_channels, rng)
    if spec.replication.replications > 1 and channels.has_stateful_models:
        raise SpecError(
            f"{spec.name}: averaging over replications requires i.i.d. channel "
            "models; stateful models would couple the replications"
        )
    timing = TimingConfig.paper_defaults()
    result = ExperimentResult(
        scenario=spec.name, mode="periodic", spec=spec.to_dict()
    )
    result.summary["theta"] = float(timing.theta)
    result.summary["replications"] = float(spec.replication.replications)
    runs_by_cell: Dict[tuple, List[object]] = {}

    for period in spec.schedule.periods:
        result.records[f"y={period}"] = {
            "period": float(period),
            "efficiency": float(timing.period_efficiency(period)),
        }
        rep_seeds = _replication_seeds(
            spec.seed + period, spec.replication.replications
        )
        # Context-local observers don't cross thread-pool workers; capture
        # the submitting thread's observer and parent span and re-enter in
        # each replication so spans nest under the scenario run.
        obs = current_observer()
        parent_span = obs.current_span_id()

        def run_replication(seed):
            # One fresh system per policy: every policy replays the same
            # spawned channel stream (common random numbers), which makes
            # the per-policy traces directly comparable.  Stateful channel
            # models additionally get a freshly materialized environment per
            # policy — their chain/cursor state would otherwise leak from
            # one policy's run into the next.
            with obs.activate(parent_span):
                return _run_policies(seed)

        def _run_policies(seed):
            runs = {}
            for policy_spec in spec.policies:
                policy_channels = channels
                if channels.has_stateful_models:
                    replay = np.random.default_rng(spec.seed)
                    spec.topology.build(replay)  # consume the topology draws
                    policy_channels = spec.channels.build_state(
                        graph.num_nodes, graph.num_channels, replay
                    )
                system = ChannelAccessSystem(graph, policy_channels, seed=seed)
                policy = policy_spec.build(system)
                runs[policy_spec.display_label] = system.simulate_periodic(
                    policy,
                    num_periods=spec.schedule.num_periods,
                    period_slots=period,
                )
            return runs

        jobs = spec.replication.jobs
        if jobs == 1 or spec.replication.replications == 1:
            replication_runs = [run_replication(seed) for seed in rep_seeds]
        else:
            from concurrent.futures import ThreadPoolExecutor

            workers = min(jobs, spec.replication.replications)
            with ThreadPoolExecutor(max_workers=workers) as pool:
                replication_runs = list(pool.map(run_replication, rep_seeds))

        for policy_spec in spec.policies:
            label = policy_spec.display_label
            runs = [replication[label] for replication in replication_runs]
            runs_by_cell[(period, label)] = runs
            actual_rows = [run.average_actual_trace() for run in runs]
            estimated_rows = [run.average_estimated_trace() for run in runs]
            result.replication_series[f"actual[{label}][y={period}]"] = [
                row.tolist() for row in actual_rows
            ]
            result.replication_series[f"estimated[{label}][y={period}]"] = [
                row.tolist() for row in estimated_rows
            ]
            result.series[f"actual[{label}][y={period}]"] = (
                np.mean(actual_rows, axis=0).tolist()
            )
            result.series[f"estimated[{label}][y={period}]"] = (
                np.mean(estimated_rows, axis=0).tolist()
            )
    result.artifacts["periodic_runs"] = runs_by_cell
    return result


def _run_dynamic(spec: ScenarioSpec) -> ExperimentResult:
    """Churn / mobility / link-flap regime: per-round learning on a changing
    topology (``spec.dynamics`` present, see :mod:`repro.dynamics`).

    The event schedule is generated deterministically from the scenario seed
    and is identical across policies and replications, so the topology
    trajectory (active nodes, dynamic-oracle value) is a property of the
    scenario while the reward traces are averaged over replication streams.
    """
    from repro.dynamics.engine import DynamicStrategyEngine
    from repro.dynamics.graph import index_frame
    from repro.sim.dynamic import DynamicSimulator

    def materialize():
        rng = np.random.default_rng(spec.seed)
        graph = spec.topology.build(rng)
        channels = spec.channels.build_state(graph.num_nodes, graph.num_channels, rng)
        return graph, channels

    graph, channels = materialize()
    num_rounds = spec.schedule.num_rounds
    schedule = spec.dynamics.build_schedule(graph, num_rounds, spec.seed)
    timing = TimingConfig.paper_defaults()
    index_graph = index_frame(graph.num_nodes, graph.num_channels)
    reward_scale = float(channels.mean_matrix().max())
    theta = float(timing.theta)
    replications = spec.replication.replications

    result = ExperimentResult(scenario=spec.name, mode="dynamic", spec=spec.to_dict())
    result.summary["theta"] = theta
    result.summary["replications"] = float(replications)
    result.summary["num_events"] = float(schedule.num_events)
    result.summary["num_event_rounds"] = float(len(schedule.event_rounds))
    result.summary["event_rate"] = float(schedule.num_events) / float(num_rounds)

    children = child_seed_sequences(spec.seed, replications)
    runs_by_label: Dict[str, List[object]] = {}
    for policy_spec in spec.policies:
        label = policy_spec.display_label
        runs = []
        for child in children:
            run_graph, run_channels = graph, channels
            if channels.has_stateful_models:
                # Stateful models carry chain/cursor state across samples;
                # every run gets a freshly materialized environment (the
                # same seed replays the identical construction).
                run_graph, run_channels = materialize()
            engine = DynamicStrategyEngine(
                run_graph,
                r=policy_spec.r,
                local_solver=policy_spec.build_local_solver(index_graph.num_vertices),
            )
            policy = policy_spec.build_dynamic(engine, index_graph, reward_scale)
            simulator = DynamicSimulator(
                engine,
                run_channels,
                schedule,
                timing=timing,
                rng=np.random.default_rng(child),
                compute_optimal=spec.compute_optimal,
                frame=index_graph,
            )
            runs.append(simulator.run(policy, num_rounds))
        runs_by_label[label] = runs

        expected_matrix = np.array(
            [run.expected_reward_trace() for run in runs], dtype=float
        )
        result.replication_series[f"expected_reward[{label}]"] = [
            row.tolist() for row in expected_matrix
        ]
        expected = expected_matrix.mean(axis=0)
        result.series[f"expected_reward[{label}]"] = expected.tolist()
        result.series[f"effective_throughput[{label}]"] = (theta * expected).tolist()
        result.series[f"protocol_mini_rounds[{label}]"] = np.mean(
            [run.mini_rounds_trace() for run in runs], axis=0
        ).tolist()
        result.series[f"protocol_messages[{label}]"] = np.mean(
            [run.messages_trace() for run in runs], axis=0
        ).tolist()
        result.summary[f"total_messages[{label}]"] = float(
            np.mean([run.total_messages() for run in runs])
        )
        result.summary[f"total_deliveries[{label}]"] = float(
            np.mean([run.total_deliveries() for run in runs])
        )
        if spec.compute_optimal:
            regret = np.mean(
                [run.dynamic_regret_trace() for run in runs], axis=0
            )
            result.series[f"dynamic_regret[{label}]"] = regret.tolist()
            result.series[f"cumulative_dynamic_regret[{label}]"] = np.cumsum(
                regret
            ).tolist()
            result.summary[f"mean_dynamic_regret[{label}]"] = float(regret.mean())
        if runs[0].event_batches:
            result.summary[f"avg_reconvergence_mini_rounds[{label}]"] = float(
                np.mean(
                    [
                        np.mean([b.reconvergence_mini_rounds for b in run.event_batches])
                        for run in runs
                    ]
                )
            )
            result.summary[f"avg_messages_per_event_round[{label}]"] = float(
                np.mean(
                    [np.mean([b.messages for b in run.event_batches]) for run in runs]
                )
            )

    first = runs_by_label[spec.policies[0].display_label][0]
    result.series["active_nodes"] = first.active_nodes_trace().tolist()
    result.series["events_per_round"] = [
        float(len(schedule.events_for_round(t))) for t in range(1, num_rounds + 1)
    ]
    if spec.compute_optimal:
        result.series["dynamic_optimal"] = first.optimal_value_trace().tolist()
    for batch in first.event_batches:
        record: Dict[str, float] = {
            "round": float(batch.round_index),
            "num_events": float(batch.num_events),
            "touched_vertices": float(batch.touched_vertices),
            "recomputed_neighborhoods": float(batch.recomputed_neighborhoods),
            "active_nodes": float(batch.active_nodes),
            "num_edges": float(batch.num_edges),
        }
        for label, runs in runs_by_label.items():
            matching = [
                next(
                    b for b in run.event_batches if b.round_index == batch.round_index
                )
                for run in runs
            ]
            record[f"reconvergence_mini_rounds[{label}]"] = float(
                np.mean([b.reconvergence_mini_rounds for b in matching])
            )
            record[f"messages[{label}]"] = float(
                np.mean([b.messages for b in matching])
            )
        result.records[f"event@r{batch.round_index}"] = record
    result.artifacts["runs"] = runs_by_label
    result.artifacts["schedule"] = schedule
    return result


def _pad_trajectory(values: List[float], length: int) -> List[float]:
    """Pad a trajectory with its last value (converged weight) to ``length``."""
    if not values:
        return [0.0] * length
    padded = list(values[:length])
    while len(padded) < length:
        padded.append(padded[-1])
    return padded


def _protocol_neighborhoods(adjacency, r: int):
    """Per-vertex neighbourhood tables for every radius the protocol uses."""
    radii = (r, r + 1, 2 * r + 1, 3 * r + 2)
    return {
        hops: [
            r_hop_neighborhood(adjacency, vertex, hops)
            for vertex in range(len(adjacency))
        ]
        for hops in radii
    }


def _transport_telemetry(spec: ScenarioSpec, transport) -> Dict[str, float]:
    """Delivery telemetry of one protocol cell, or ``{}``.

    Telemetry fields surface only when the transport actually has lossy
    knobs enabled (drops, latency or reordering); a lossless transport's
    records stay byte-identical to the simulated oracle's, which is what
    the transport-equivalence contract (and its tests) lock down.
    """
    lossy = spec.transport.kind == "asyncio" and (
        spec.transport.drop > 0.0
        or spec.transport.latency != "none"
        or spec.transport.reorder
    )
    if not lossy or not hasattr(transport, "telemetry_summary"):
        return {}
    return dict(transport.telemetry_summary())


def _run_protocol(spec: ScenarioSpec) -> ExperimentResult:
    """Fig. 6 / Section IV-C regime: run Algorithm 3 once per network cell."""
    decision = spec.policies[0]
    rng = np.random.default_rng(spec.seed)
    result = ExperimentResult(
        scenario=spec.name, mode="protocol", spec=spec.to_dict()
    )
    result.summary["r"] = float(decision.r)
    cells = spec.network_sweep or (
        (spec.topology.num_nodes, spec.topology.num_channels),
    )
    faults_active = spec.faults is not None and spec.faults.is_active
    protocol_runs = {}
    fault_reports = {}
    for num_nodes, num_channels in cells:
        label = f"{num_nodes}x{num_channels}"
        graph = spec.topology.with_size(num_nodes, num_channels).build(rng)
        extended = ExtendedConflictGraph(graph)
        weights = spec.channels.build_means(num_nodes, num_channels, rng).reshape(-1)
        adjacency = extended.adjacency_sets()
        local_solver = (
            GreedyMWISSolver()
            if decision.use_greedy_local_solver(extended.num_vertices)
            else None
        )
        telemetry: Dict[str, float] = {}
        fault_record: Dict[str, float] = {}
        with current_observer().span(
            "run.cell", cell=label, num_vertices=extended.num_vertices
        ) as cell_span:
            if faults_active:
                run, fault_record, telemetry = _run_faulty_cell(
                    spec, decision, adjacency, weights, local_solver,
                    cell=(num_nodes, num_channels),
                )
                fault_reports[label] = fault_record
            elif spec.transport.kind == "simulated":
                protocol = DistributedRobustPTAS(
                    adjacency, r=decision.r, local_solver=local_solver
                )
                run = protocol.run(weights)
            else:
                # Non-simulated transports share the protocol's neighbourhood
                # tables so k-hop routing is computed once per cell.
                hoods = _protocol_neighborhoods(adjacency, decision.r)
                transport = spec.transport.build(
                    adjacency, run_seed=spec.seed, precomputed_neighborhoods=hoods
                )
                try:
                    protocol = DistributedRobustPTAS(
                        adjacency,
                        r=decision.r,
                        local_solver=local_solver,
                        precomputed_neighborhoods=hoods,
                        transport=transport,
                    )
                    run = protocol.run(weights)
                    telemetry = _transport_telemetry(spec, transport)
                finally:
                    transport.close()
            cell_span.set_attrs(
                mini_rounds=run.num_mini_rounds,
                total_messages=run.costs.communication.total_messages,
            )
        protocol_runs[label] = run
        trajectory = list(run.weight_trajectory())
        if spec.schedule.max_mini_rounds > 0:
            trajectory = _pad_trajectory(trajectory, spec.schedule.max_mini_rounds)
        result.series[f"weight[{label}]"] = [float(v) for v in trajectory]
        result.replication_series[f"weight[{label}]"] = [
            [float(v) for v in trajectory]
        ]
        costs = run.costs
        mini_rounds = run.num_mini_rounds
        final_weight = trajectory[-1] if trajectory else 0.0
        convergence_round = next(
            (
                index + 1
                for index, value in enumerate(trajectory)
                if value >= final_weight
            ),
            len(trajectory),
        )
        result.records[label] = {
            "num_vertices": float(extended.num_vertices),
            "average_degree": float(graph.average_degree()),
            "mini_rounds": float(mini_rounds),
            "max_messages_per_vertex": float(
                costs.communication.max_messages_per_vertex
            ),
            "total_messages": float(costs.communication.total_messages),
            "total_deliveries": float(costs.communication.total_deliveries),
            "mini_timeslots_wb": float(
                costs.communication.mini_timeslots_per_phase.get("WB", 0)
            ),
            "mini_timeslots_ld": float(
                costs.communication.mini_timeslots_per_phase.get("LD", 0)
            ),
            "mini_timeslots_lb": float(
                costs.communication.mini_timeslots_per_phase.get("LB", 0)
            ),
            "total_mini_timeslots": float(costs.communication.total_mini_timeslots),
            "message_bound": float(theoretical_message_bound(decision.r, mini_rounds)),
            "max_stored_weights": float(costs.max_stored_weights),
            "space_bound": float(theoretical_space_bound(costs.max_stored_weights)),
            "max_local_instance": float(costs.computation.max_candidate_set_size),
            "local_mwis_calls": float(costs.computation.local_mwis_calls),
            "winner_weight": float(run.independent_set.weight),
            "convergence_round": float(convergence_round),
        }
        result.records[label].update(fault_record)
        result.records[label].update(telemetry)
    result.artifacts["protocol_runs"] = protocol_runs
    if fault_reports:
        result.artifacts["fault_reports"] = fault_reports
    return result


def _run_faulty_cell(
    spec: ScenarioSpec,
    decision,
    adjacency,
    weights,
    local_solver,
    *,
    cell,
):
    """One protocol cell under fault injection.

    Returns ``(run, fault_record, telemetry)`` where ``fault_record`` holds
    the per-cell fault metrics: the report counters, the fault-free baseline
    weight on the same environment, the regret the faults inflicted on it
    and the re-convergence cost (extra mini-rounds over the honest run).
    """
    from repro.faults.runtime import FaultInjectionEngine

    hoods = _protocol_neighborhoods(adjacency, decision.r)
    plan = spec.faults.build_plan(
        len(adjacency), run_seed=spec.seed, cell=cell
    )
    engine = FaultInjectionEngine(
        adjacency,
        decision.r,
        hoods[decision.r],
        hoods[decision.r + 1],
        hoods[2 * decision.r + 1],
        local_solver,
        plan=plan,
        quorum=spec.faults.build_quorum(),
    )
    transport = spec.transport.build(
        adjacency, run_seed=spec.seed, precomputed_neighborhoods=hoods
    )
    try:
        run, report = engine.run(transport, weights)
        telemetry = _transport_telemetry(spec, transport)
    finally:
        transport.close()
    # The fault-free baseline on the exact same environment: regret is how
    # much honest winner weight the faults cost, re-convergence cost is the
    # extra mini-rounds the faulty run needed over the honest decision.
    baseline = DistributedRobustPTAS(
        adjacency,
        r=decision.r,
        local_solver=local_solver,
        precomputed_neighborhoods=hoods,
    ).run(weights)
    baseline_weight = float(baseline.independent_set.weight)
    fault_record = {
        "fault_fraction": float(report.fault_fraction),
        "num_crashed": float(report.num_crashed),
        "num_byzantine": float(report.num_byzantine),
        "claimed_winners": float(report.claimed_winners),
        "final_winners": float(report.final_winners),
        "quorum_rejected": float(report.quorum_rejected),
        "byzantine_winners": float(report.byzantine_winners),
        "conflicting_winners": float(report.conflicting_winners),
        "corrupted_winners": float(report.corrupted_winners),
        "corrupted_winner_rate": float(report.corrupted_winner_rate),
        "honest_winner_weight": float(report.honest_winner_weight),
        "undecided_honest": float(report.undecided_honest),
        "suspected_crashed": float(report.suspected_crashed),
        "excluded_senders": float(report.excluded_senders),
        "accusations_sent": float(report.accusations_sent),
        "quorum_patience": float(report.patience),
        "quorum_enabled": float(report.quorum_enabled),
        "baseline_winner_weight": baseline_weight,
        "fault_regret": baseline_weight - float(report.honest_winner_weight),
        "reconvergence_cost": float(
            run.num_mini_rounds - baseline.num_mini_rounds
        ),
    }
    return run, fault_record, telemetry


# ----------------------------------------------------------------------
# Generic rendering
# ----------------------------------------------------------------------
def format_result(result: ExperimentResult) -> str:
    """Render any :class:`ExperimentResult` as diffable text."""
    blocks = [
        f"scenario {result.scenario} ({result.mode}) — "
        f"wall clock {result.wall_clock_s:.2f}s"
    ]
    if result.summary:
        rows = [[key, float(value)] for key, value in result.summary.items()]
        blocks.append(render_table(["summary", "value"], rows))
    if result.records:
        record_keys = sorted({key for rec in result.records.values() for key in rec})
        headers = ["cell", *record_keys]
        rows = [
            [cell, *[record.get(key, float("nan")) for key in record_keys]]
            for cell, record in result.records.items()
        ]
        blocks.append(render_table(headers, rows))
    if result.series:
        blocks.append(
            "\n".join(
                render_series(name, values) for name, values in result.series.items()
            )
        )
    return "\n\n".join(blocks)
