"""Human-readable summaries of ``repro.trace/v1`` files."""

from __future__ import annotations

from typing import Dict, List

from repro.obs.trace import TraceData, read_trace
from repro.reporting import render_table


def _span_table(trace: TraceData) -> str:
    totals: Dict[str, Dict[str, float]] = {}
    for span in trace.spans:
        entry = totals.setdefault(span.name, {"count": 0, "total_s": 0.0, "max_s": 0.0})
        entry["count"] += 1
        entry["total_s"] += span.duration_s
        entry["max_s"] = max(entry["max_s"], span.duration_s)
    rows = []
    for name in sorted(totals, key=lambda key: (-totals[key]["total_s"], key)):
        entry = totals[name]
        rows.append(
            [
                name,
                int(entry["count"]),
                f"{entry['total_s']:.6f}",
                f"{entry['total_s'] / entry['count']:.6f}",
                f"{entry['max_s']:.6f}",
            ]
        )
    return render_table(["span", "count", "total_s", "mean_s", "max_s"], rows)


def summarize_trace(trace: TraceData) -> str:
    """Render per-span timing and metric tables for a parsed trace."""
    sections: List[str] = []
    scenario = trace.header.get("scenario")
    title = f"trace summary ({scenario})" if scenario else "trace summary"
    sections.append(title)
    if trace.spans:
        sections.append(_span_table(trace))
    else:
        sections.append("(no spans recorded)")
    if trace.counters:
        rows = [[name, trace.counters[name]] for name in sorted(trace.counters)]
        sections.append(render_table(["counter", "value"], rows))
    if trace.gauges:
        rows = [[name, trace.gauges[name]] for name in sorted(trace.gauges)]
        sections.append(render_table(["gauge", "value"], rows))
    if trace.histograms:
        rows = []
        for name in sorted(trace.histograms):
            summary = trace.histograms[name]
            rows.append(
                [
                    name,
                    int(summary["count"]),
                    f"{summary['mean']:.6f}",
                    f"{summary['p50']:.6f}",
                    f"{summary['p90']:.6f}",
                    f"{summary['p99']:.6f}",
                    f"{summary['max']:.6f}",
                ]
            )
        sections.append(
            render_table(["histogram", "count", "mean", "p50", "p90", "p99", "max"], rows)
        )
    return "\n\n".join(sections)


def summarize_trace_file(path) -> str:
    """Read, validate, and summarize the trace file at ``path``."""
    return summarize_trace(read_trace(path))
