"""Metrics registry: counters, gauges, and histograms.

Histogram summaries are deterministic: percentiles use the nearest-rank
method over the sorted stored observations, so two runs that record the
same values produce byte-identical summaries regardless of insertion
order or platform.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional


def percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile ``q`` (0-100] of pre-sorted ``sorted_values``."""
    if not sorted_values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 < q <= 100.0:
        raise ValueError(f"percentile q must be in (0, 100], got {q}")
    rank = math.ceil(q / 100.0 * len(sorted_values))
    return sorted_values[rank - 1]


def summarize_values(values: List[float]) -> Dict[str, float]:
    """Deterministic summary of a list of observations."""
    ordered = sorted(values)
    count = len(ordered)
    total = sum(ordered)
    return {
        "count": count,
        "total": total,
        "min": ordered[0],
        "max": ordered[-1],
        "mean": total / count,
        "p50": percentile(ordered, 50.0),
        "p90": percentile(ordered, 90.0),
        "p99": percentile(ordered, 99.0),
    }


class MetricsRegistry:
    """Accumulates counters, gauges, and raw histogram observations.

    ``locked=True`` guards every mutation with a lock for registries
    shared across threads; the unlocked default is for single-threaded
    hot paths such as transport delivery loops.
    """

    def __init__(self, locked: bool = False) -> None:
        self._lock: Optional[threading.Lock] = threading.Lock() if locked else None
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, List[float]] = {}

    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to the counter ``name``."""
        if self._lock is None:
            self._counters[name] = self._counters.get(name, 0) + value
        else:
            with self._lock:
                self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest value."""
        if self._lock is None:
            self._gauges[name] = value
        else:
            with self._lock:
                self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Append one observation to histogram ``name``."""
        if self._lock is None:
            self._histograms.setdefault(name, []).append(value)
        else:
            with self._lock:
                self._histograms.setdefault(name, []).append(value)

    def counter_value(self, name: str, default: float = 0) -> float:
        """Current value of counter ``name`` (``default`` if never counted)."""
        return self._counters.get(name, default)

    def gauge_value(self, name: str, default: float = 0.0) -> float:
        """Latest value of gauge ``name`` (``default`` if never set)."""
        return self._gauges.get(name, default)

    def histogram_values(self, name: str) -> List[float]:
        """Copy of the raw observations recorded for histogram ``name``."""
        return list(self._histograms.get(name, []))

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's state into this one (gauges: theirs win)."""
        snapshot = other.snapshot()
        for name, value in snapshot["counters"].items():
            self.count(name, value)
        for name, value in snapshot["gauges"].items():
            self.gauge(name, value)
        for name in other._histograms:
            for value in other.histogram_values(name):
                self.observe(name, value)

    def reset(self) -> None:
        """Drop all recorded state."""
        if self._lock is not None:
            with self._lock:
                self._counters.clear()
                self._gauges.clear()
                self._histograms.clear()
        else:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Deterministic, JSON-ready view: sorted names, summarized histograms."""
        if self._lock is not None:
            with self._lock:
                counters = dict(self._counters)
                gauges = dict(self._gauges)
                histograms = {name: list(vals) for name, vals in self._histograms.items()}
        else:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = {name: list(vals) for name, vals in self._histograms.items()}
        return {
            "counters": {name: counters[name] for name in sorted(counters)},
            "gauges": {name: gauges[name] for name in sorted(gauges)},
            "histograms": {
                name: summarize_values(histograms[name]) for name in sorted(histograms)
            },
        }
