"""Context-local observer protocol with a zero-overhead no-op default.

Instrumented code calls :func:`current_observer` and reports spans and
metrics against whatever observer is installed in the current context.
The default :data:`NULL_OBSERVER` discards everything; installing a
:class:`repro.obs.trace.TracingObserver` via :func:`use_observer` turns
the same call sites into a recorded trace.

Observers must never influence the computation they watch: they may read
the wall clock and accumulate counters, but they never draw from RNG
streams or mutate the objects passed through instrumented code.
"""

from __future__ import annotations

import contextlib
from contextvars import ContextVar
from typing import Iterator, Optional


class _NullSpan:
    """Span handle that records nothing."""

    __slots__ = ()

    def set_attrs(self, **attrs: object) -> None:
        """Discard span attributes."""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _NullActivation:
    """Context manager returned by :meth:`Observer.activate` on the no-op."""

    __slots__ = ()

    def __enter__(self) -> "Observer":
        return NULL_OBSERVER

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_ACTIVATION = _NullActivation()


class Observer:
    """No-op observability sink; subclasses record spans and metrics.

    The base class is also the null implementation: every method returns
    a shared do-nothing object, so instrumentation under the default
    observer costs a context-variable read and an attribute call.
    """

    enabled: bool = False

    def span(self, name: str, **attrs: object) -> _NullSpan:
        """Open a span; use as a context manager around the timed region."""
        return _NULL_SPAN

    def count(self, name: str, value: int = 1) -> None:
        """Increment a counter."""

    def gauge(self, name: str, value: float) -> None:
        """Record the latest value of a gauge."""

    def observe(self, name: str, value: float) -> None:
        """Add one observation to a histogram."""

    def current_span_id(self) -> Optional[int]:
        """Return the id of the innermost open span, if any."""
        return None

    def activate(self, parent: Optional[int] = None) -> _NullActivation:
        """Install this observer in the current context (for worker threads).

        ``contextvars`` do not propagate into thread-pool workers, so
        callers capture the observer and a parent span id on the
        submitting thread and re-enter both inside the worker with
        ``with obs.activate(parent): ...``.
        """
        return _NULL_ACTIVATION


NULL_OBSERVER = Observer()

_OBSERVER: ContextVar[Observer] = ContextVar("repro_observer", default=NULL_OBSERVER)


def current_observer() -> Observer:
    """Return the observer installed in the current context."""
    return _OBSERVER.get()


@contextlib.contextmanager
def use_observer(observer: Observer) -> Iterator[Observer]:
    """Install ``observer`` for the duration of the ``with`` block."""
    token = _OBSERVER.set(observer)
    try:
        yield observer
    finally:
        _OBSERVER.reset(token)


def _install(observer: Observer):
    """Set the context observer and return the reset token (internal)."""
    return _OBSERVER.set(observer)


def _uninstall(token) -> None:
    """Reset the context observer from a token returned by :func:`_install`."""
    _OBSERVER.reset(token)
