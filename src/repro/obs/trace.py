"""Tracing observer and the ``repro.trace/v1`` JSONL schema.

A trace file is newline-delimited JSON.  The first line is a header
naming the schema; every following line is one record whose ``kind`` is
``span``, ``counter``, ``gauge``, or ``histogram``:

``{"kind": "header", "schema": "repro.trace/v1", "scenario": ..., "span_count": N}``
``{"kind": "span", "id": 3, "parent": 1, "name": "sim.round", "start_s": ..., "end_s": ..., "attrs": {...}}``
``{"kind": "counter", "name": "sweep.units.cache_hit", "value": 12}``
``{"kind": "gauge", "name": "sweep.jobs", "value": 4}``
``{"kind": "histogram", "name": "net.latency", "summary": {"count": ..., "p50": ..., ...}}``

Span ids are sequential in creation order; ``parent`` is ``null`` for
roots.  All times are seconds relative to the observer's start.
"""

from __future__ import annotations

import json
import threading
import time
from contextvars import ContextVar
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.obs.observer import Observer, _install, _uninstall
from repro.obs.metrics import MetricsRegistry

TRACE_SCHEMA = "repro.trace/v1"

_CURRENT_SPAN: ContextVar[Optional[int]] = ContextVar("repro_obs_span", default=None)


class TraceError(ValueError):
    """Raised when a trace file does not conform to ``repro.trace/v1``."""


@dataclass
class SpanRecord:
    """One closed span: a named, timed region of the run hierarchy."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start_s: float
    end_s: float
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        """Elapsed wall-clock seconds between start and end."""
        return self.end_s - self.start_s

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form used for trace lines."""
        return {
            "kind": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "attrs": dict(self.attrs),
        }


class _Span:
    """Live span handle; closes and records itself on ``__exit__``."""

    __slots__ = ("_observer", "span_id", "parent_id", "name", "start_s", "attrs", "_token")

    def __init__(self, observer: "TracingObserver", name: str, attrs: Dict[str, object]) -> None:
        self._observer = observer
        self.name = name
        self.attrs = attrs
        self.span_id = -1
        self.parent_id: Optional[int] = None
        self.start_s = 0.0
        self._token = None

    def set_attrs(self, **attrs: object) -> None:
        """Attach or overwrite attributes on this span."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        obs = self._observer
        self.parent_id = _CURRENT_SPAN.get()
        self.span_id = obs._next_span_id()
        self.start_s = obs._now()
        self._token = _CURRENT_SPAN.set(self.span_id)
        return self

    def __exit__(self, *exc_info: object) -> bool:
        end_s = self._observer._now()
        _CURRENT_SPAN.reset(self._token)
        self._observer._record_span(
            SpanRecord(
                span_id=self.span_id,
                parent_id=self.parent_id,
                name=self.name,
                start_s=self.start_s,
                end_s=end_s,
                attrs=self.attrs,
            )
        )
        return False


class _Activation:
    """Re-installs a tracing observer (and parent span) in a worker thread."""

    __slots__ = ("_observer", "_parent", "_obs_token", "_span_token")

    def __init__(self, observer: "TracingObserver", parent: Optional[int]) -> None:
        self._observer = observer
        self._parent = parent

    def __enter__(self) -> "TracingObserver":
        self._obs_token = _install(self._observer)
        self._span_token = _CURRENT_SPAN.set(self._parent)
        return self._observer

    def __exit__(self, *exc_info: object) -> bool:
        _CURRENT_SPAN.reset(self._span_token)
        _uninstall(self._obs_token)
        return False


class TracingObserver(Observer):
    """Observer that records spans and metrics for export.

    Thread-safe: span ids and the closed-span list are guarded by a
    lock, and the metrics registry is created locked.  The span *stack*
    is context-local, so concurrent replications each see their own
    parent chain once re-entered via :meth:`activate`.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._t0 = time.perf_counter()
        self._next_id = 0
        self._spans: List[SpanRecord] = []
        self.metrics = MetricsRegistry(locked=True)

    def _now(self) -> float:
        return time.perf_counter() - self._t0

    def _next_span_id(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            return span_id

    def _record_span(self, record: SpanRecord) -> None:
        with self._lock:
            self._spans.append(record)

    def span(self, name: str, **attrs: object) -> _Span:
        """Open a named span; enter it as a context manager to time it."""
        return _Span(self, name, attrs)

    def count(self, name: str, value: int = 1) -> None:
        """Increment counter ``name``."""
        self.metrics.count(name, value)

    def gauge(self, name: str, value: float) -> None:
        """Record the latest value of gauge ``name``."""
        self.metrics.gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        """Add one observation to histogram ``name``."""
        self.metrics.observe(name, value)

    def current_span_id(self) -> Optional[int]:
        """Id of the innermost open span in this context, if any."""
        return _CURRENT_SPAN.get()

    def activate(self, parent: Optional[int] = None) -> _Activation:
        """Context manager installing this observer inside a worker thread."""
        return _Activation(self, parent)

    def spans(self) -> List[SpanRecord]:
        """Closed spans, ordered by span id (creation order)."""
        with self._lock:
            return sorted(self._spans, key=lambda record: record.span_id)

    def to_payload(self, scenario: Optional[str] = None) -> Dict[str, object]:
        """JSON-ready trace payload (header fields + records)."""
        spans = self.spans()
        metrics = self.metrics.snapshot()
        header: Dict[str, object] = {
            "kind": "header",
            "schema": TRACE_SCHEMA,
            "span_count": len(spans),
        }
        if scenario is not None:
            header["scenario"] = scenario
        return {
            "header": header,
            "spans": [record.to_dict() for record in spans],
            "counters": metrics["counters"],
            "gauges": metrics["gauges"],
            "histograms": metrics["histograms"],
        }


@dataclass
class TraceData:
    """Parsed, validated contents of a ``repro.trace/v1`` file."""

    header: Dict[str, object]
    spans: List[SpanRecord]
    counters: Dict[str, float]
    gauges: Dict[str, float]
    histograms: Dict[str, Dict[str, float]]


def write_trace(path, observer: TracingObserver, scenario: Optional[str] = None) -> None:
    """Write the observer's trace to ``path`` as ``repro.trace/v1`` JSONL."""
    payload = observer.to_payload(scenario=scenario)
    lines = [json.dumps(payload["header"], sort_keys=True)]
    for span_dict in payload["spans"]:
        lines.append(json.dumps(span_dict, sort_keys=True))
    for name, value in payload["counters"].items():
        lines.append(json.dumps({"kind": "counter", "name": name, "value": value}, sort_keys=True))
    for name, value in payload["gauges"].items():
        lines.append(json.dumps({"kind": "gauge", "name": name, "value": value}, sort_keys=True))
    for name, summary in payload["histograms"].items():
        lines.append(
            json.dumps({"kind": "histogram", "name": name, "summary": summary}, sort_keys=True)
        )
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


_SPAN_FIELDS = {"kind", "id", "parent", "name", "start_s", "end_s", "attrs"}


def _parse_span(record: Dict[str, object], line_number: int) -> SpanRecord:
    missing = _SPAN_FIELDS - set(record)
    if missing:
        raise TraceError(f"line {line_number}: span missing fields {sorted(missing)}")
    if not isinstance(record["id"], int) or record["id"] < 0:
        raise TraceError(f"line {line_number}: span id must be a non-negative integer")
    parent = record["parent"]
    if parent is not None and not isinstance(parent, int):
        raise TraceError(f"line {line_number}: span parent must be an integer or null")
    if not isinstance(record["name"], str) or not record["name"]:
        raise TraceError(f"line {line_number}: span name must be a non-empty string")
    for key in ("start_s", "end_s"):
        if not isinstance(record[key], (int, float)) or isinstance(record[key], bool):
            raise TraceError(f"line {line_number}: span {key} must be a number")
    if record["end_s"] < record["start_s"]:
        raise TraceError(f"line {line_number}: span ends before it starts")
    if not isinstance(record["attrs"], dict):
        raise TraceError(f"line {line_number}: span attrs must be an object")
    return SpanRecord(
        span_id=record["id"],
        parent_id=parent,
        name=record["name"],
        start_s=float(record["start_s"]),
        end_s=float(record["end_s"]),
        attrs=dict(record["attrs"]),
    )


def read_trace(path) -> TraceData:
    """Parse and strictly validate a ``repro.trace/v1`` file."""
    text = Path(path).read_text(encoding="utf-8")
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise TraceError("empty trace file")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as error:
        raise TraceError(f"line 1: invalid JSON: {error}") from error
    if not isinstance(header, dict) or header.get("kind") != "header":
        raise TraceError("line 1: first record must be the trace header")
    if header.get("schema") != TRACE_SCHEMA:
        raise TraceError(
            f"unsupported trace schema {header.get('schema')!r}; expected {TRACE_SCHEMA!r}"
        )
    spans: List[SpanRecord] = []
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, Dict[str, float]] = {}
    seen_ids = set()
    for line_number, line in enumerate(lines[1:], start=2):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise TraceError(f"line {line_number}: invalid JSON: {error}") from error
        if not isinstance(record, dict):
            raise TraceError(f"line {line_number}: record must be a JSON object")
        kind = record.get("kind")
        if kind == "span":
            span = _parse_span(record, line_number)
            if span.span_id in seen_ids:
                raise TraceError(f"line {line_number}: duplicate span id {span.span_id}")
            seen_ids.add(span.span_id)
            spans.append(span)
        elif kind in ("counter", "gauge"):
            name = record.get("name")
            value = record.get("value")
            if not isinstance(name, str) or not name:
                raise TraceError(f"line {line_number}: {kind} name must be a non-empty string")
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise TraceError(f"line {line_number}: {kind} value must be a number")
            (counters if kind == "counter" else gauges)[name] = value
        elif kind == "histogram":
            name = record.get("name")
            summary = record.get("summary")
            if not isinstance(name, str) or not name:
                raise TraceError(f"line {line_number}: histogram name must be a non-empty string")
            if not isinstance(summary, dict):
                raise TraceError(f"line {line_number}: histogram summary must be an object")
            required = {"count", "total", "min", "max", "mean", "p50", "p90", "p99"}
            missing = required - set(summary)
            if missing:
                raise TraceError(
                    f"line {line_number}: histogram summary missing {sorted(missing)}"
                )
            histograms[name] = dict(summary)
        else:
            raise TraceError(f"line {line_number}: unknown record kind {kind!r}")
    for span in spans:
        if span.parent_id is not None and span.parent_id not in seen_ids:
            raise TraceError(f"span {span.span_id} references unknown parent {span.parent_id}")
    expected = header.get("span_count")
    if expected is not None and expected != len(spans):
        raise TraceError(f"header span_count={expected} but file contains {len(spans)} spans")
    return TraceData(
        header=header, spans=spans, counters=counters, gauges=gauges, histograms=histograms
    )
