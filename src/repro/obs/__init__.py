"""Observability layer: spans, metrics, and exportable traces.

``repro.obs`` provides a context-local :class:`Observer` that the sim,
sweep, distributed, and faults layers report into.  The default observer
is a zero-overhead no-op, so instrumented code paths stay bit-identical
to uninstrumented runs whether tracing is off or on: observers only read
the wall clock and accumulate counters — they never touch RNG streams or
envelope contents.
"""

from repro.obs.metrics import MetricsRegistry, percentile
from repro.obs.observer import (
    NULL_OBSERVER,
    Observer,
    current_observer,
    use_observer,
)
from repro.obs.summarize import summarize_trace, summarize_trace_file
from repro.obs.trace import (
    TRACE_SCHEMA,
    SpanRecord,
    TraceData,
    TraceError,
    TracingObserver,
    read_trace,
    write_trace,
)

__all__ = [
    "MetricsRegistry",
    "NULL_OBSERVER",
    "Observer",
    "SpanRecord",
    "TRACE_SCHEMA",
    "TraceData",
    "TraceError",
    "TracingObserver",
    "current_observer",
    "percentile",
    "read_trace",
    "summarize_trace",
    "summarize_trace_file",
    "use_observer",
    "write_trace",
]
