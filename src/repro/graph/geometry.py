"""Planar geometry helpers used by the unit-disk graph model.

The paper models conflicts with unit disks: each node is a disk centred on
itself and two nodes conflict when their disks intersect, i.e. when the
Euclidean distance between the centres is at most twice the disk radius
(the paper uses ``||u, v|| <= 2`` for unit radius disks).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

__all__ = [
    "Point",
    "euclidean",
    "pairwise_distances",
    "bounding_box",
    "points_to_array",
    "grid_cell_keys",
]


@dataclass(frozen=True, order=True)
class Point:
    """A point in the plane.

    Coordinates are plain floats; ``Point`` instances are immutable and
    hashable so they can be used as dictionary keys and set members.
    """

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Return the Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a new point translated by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> Tuple[float, float]:
        """Return the coordinates as a plain ``(x, y)`` tuple."""
        return (self.x, self.y)


def euclidean(a: Point, b: Point) -> float:
    """Euclidean distance between two points."""
    return a.distance_to(b)


def points_to_array(points: Sequence[Point]) -> np.ndarray:
    """Convert a sequence of points to an ``(n, 2)`` float array.

    An ``(n, 2)`` ndarray passes through unchanged (as float64), so the
    large-``n`` code paths can hand coordinate arrays around without ever
    materializing :class:`Point` objects.
    """
    if isinstance(points, np.ndarray):
        return np.asarray(points, dtype=float).reshape(-1, 2)
    if not points:
        return np.zeros((0, 2), dtype=float)
    return np.array([[p.x, p.y] for p in points], dtype=float)


def grid_cell_keys(coords: np.ndarray, cell_size: float) -> Tuple[np.ndarray, int]:
    """Bucket planar coordinates into square grid cells of side ``cell_size``.

    Returns ``(keys, stride)`` where ``keys[i]`` is a single int64 key that is
    equal for two points iff they fall into the same cell, and neighbouring
    cells differ by exactly ``{±1, ±stride, ±stride ± 1}``.  The y component
    is offset by one inside its ``stride``-wide band, so stepping to
    ``key ± 1`` from an occupied cell can never collide with a cell of the
    adjacent column — off-grid neighbours simply match nothing.  Only
    *occupied* cells ever exist; no dense grid is allocated, so the key space
    is as sparse as the data.
    """
    if cell_size <= 0:
        raise ValueError(f"cell_size must be positive, got {cell_size}")
    coords = np.asarray(coords, dtype=float).reshape(-1, 2)
    if coords.shape[0] == 0:
        return np.zeros(0, dtype=np.int64), 3
    cells = np.floor(coords / cell_size).astype(np.int64)
    cx = cells[:, 0] - cells[:, 0].min()
    cy = cells[:, 1] - cells[:, 1].min()
    # +3 leaves an empty guard row above and below every column band.
    stride = int(cy.max()) + 3
    return cx * stride + (cy + 1), stride


def pairwise_distances(points: Sequence[Point]) -> np.ndarray:
    """Return the full ``(n, n)`` matrix of Euclidean distances.

    The computation is vectorised with numpy; for the network sizes used in
    the paper (up to a few hundred nodes) this is instantaneous.
    """
    arr = points_to_array(points)
    if arr.shape[0] == 0:
        return np.zeros((0, 0), dtype=float)
    diff = arr[:, None, :] - arr[None, :, :]
    return np.sqrt((diff ** 2).sum(axis=-1))


def bounding_box(points: Iterable[Point]) -> Tuple[Point, Point]:
    """Return the axis-aligned bounding box of ``points``.

    Returns a ``(lower_left, upper_right)`` pair.  Raises ``ValueError`` for
    an empty input because an empty bounding box is not meaningful.
    """
    pts: List[Point] = list(points)
    if not pts:
        raise ValueError("bounding_box() requires at least one point")
    xs = [p.x for p in pts]
    ys = [p.y for p in pts]
    return Point(min(xs), min(ys)), Point(max(xs), max(ys))
