"""Topology generators used in the paper's evaluation.

* Random networks with uniformly-distributed node positions (Section V uses
  networks of 50/100/200 users with 5 or 10 channels, and a 15-user network
  for the regret study).
* Linear networks: the worst case of Fig. 5 where only one LocalLeader can be
  elected per mini-round.
* Grid, ring and star networks for tests and additional examples.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.graph.conflict_graph import ConflictGraph
from repro.graph.geometry import Point
from repro.graph.unit_disk import DEFAULT_CONFLICT_RADIUS, unit_disk_edge_array


def _geometric_network(
    coords: np.ndarray, num_channels: int, radius: float
) -> ConflictGraph:
    """Build a unit-disk :class:`ConflictGraph` from a coordinate array.

    The whole pipeline is array-based (cell-bucket edge construction into
    the CSR constructor); the :class:`Point` list is kept only as the
    positions attribute for reproducibility, plotting and the dynamics
    layer.
    """
    edges = unit_disk_edge_array(coords, radius=radius)
    positions = [Point(float(x), float(y)) for x, y in coords]
    return ConflictGraph(
        len(positions), edges, num_channels, positions=positions
    )

__all__ = [
    "random_network",
    "connected_random_network",
    "linear_network",
    "grid_network",
    "ring_network",
    "star_network",
    "area_side_for_average_degree",
]


def area_side_for_average_degree(
    num_nodes: int,
    average_degree: float,
    radius: float = DEFAULT_CONFLICT_RADIUS,
) -> float:
    """Side length of a square deployment area giving roughly the requested
    average degree.

    For ``N`` nodes placed uniformly in an ``L x L`` square, the expected
    number of neighbours of a typical node is approximately
    ``(N - 1) * pi * radius^2 / L^2`` (ignoring border effects).  Solving for
    ``L`` yields the value returned here.
    """
    if num_nodes <= 1:
        raise ValueError("need at least two nodes to define an average degree")
    if average_degree <= 0:
        raise ValueError(f"average_degree must be positive, got {average_degree}")
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")
    area = (num_nodes - 1) * math.pi * radius * radius / average_degree
    return math.sqrt(area)


def random_network(
    num_nodes: int,
    num_channels: int,
    *,
    area_side: Optional[float] = None,
    average_degree: Optional[float] = None,
    radius: float = DEFAULT_CONFLICT_RADIUS,
    rng: Optional[np.random.Generator] = None,
) -> ConflictGraph:
    """Random unit-disk network with uniformly distributed node positions.

    Exactly one of ``area_side`` and ``average_degree`` may be given; when
    neither is given a default average degree of 6 is targeted, which gives
    connected-ish sparse networks similar to the paper's random topologies.
    """
    if num_nodes <= 0:
        raise ValueError(f"num_nodes must be positive, got {num_nodes}")
    if area_side is not None and average_degree is not None:
        raise ValueError("give either area_side or average_degree, not both")
    rng = rng if rng is not None else np.random.default_rng()
    if area_side is None:
        target_degree = average_degree if average_degree is not None else 6.0
        if num_nodes == 1:
            area_side = radius
        else:
            area_side = area_side_for_average_degree(
                num_nodes, target_degree, radius=radius
            )
    if area_side <= 0:
        raise ValueError(f"area_side must be positive, got {area_side}")
    coords = rng.uniform(0.0, area_side, size=(num_nodes, 2))
    return _geometric_network(coords, num_channels, radius)


def connected_random_network(
    num_nodes: int,
    num_channels: int,
    *,
    average_degree: float = 6.0,
    radius: float = DEFAULT_CONFLICT_RADIUS,
    rng: Optional[np.random.Generator] = None,
    max_attempts: int = 200,
) -> ConflictGraph:
    """Random network resampled until it is connected.

    The regret experiment of the paper (Fig. 7) uses a *connected* random
    network of 15 users; this helper reproduces that construction.  Raises
    ``RuntimeError`` when no connected sample is found within
    ``max_attempts`` draws (which indicates the requested density is too low).
    """
    rng = rng if rng is not None else np.random.default_rng()
    for _ in range(max_attempts):
        graph = random_network(
            num_nodes,
            num_channels,
            average_degree=average_degree,
            radius=radius,
            rng=rng,
        )
        if graph.is_connected():
            return graph
    raise RuntimeError(
        f"could not sample a connected network of {num_nodes} nodes with "
        f"average degree {average_degree} in {max_attempts} attempts"
    )


def linear_network(
    num_nodes: int,
    num_channels: int,
    *,
    spacing: float = 1.0,
    radius: float = DEFAULT_CONFLICT_RADIUS,
) -> ConflictGraph:
    """Nodes aligned uniformly along a line (the Fig. 5 worst case).

    With ``spacing <= radius`` consecutive nodes conflict; the default spacing
    of 1 with the default radius of 2 makes each node conflict with its two
    neighbours on either side, mirroring the "within 1-hop distance" phrasing
    of the paper.
    """
    if num_nodes <= 0:
        raise ValueError(f"num_nodes must be positive, got {num_nodes}")
    if spacing <= 0:
        raise ValueError(f"spacing must be positive, got {spacing}")
    coords = np.stack(
        (np.arange(num_nodes, dtype=float) * spacing, np.zeros(num_nodes)),
        axis=1,
    )
    return _geometric_network(coords, num_channels, radius)


def grid_network(
    rows: int,
    cols: int,
    num_channels: int,
    *,
    spacing: float = 2.0,
    radius: float = DEFAULT_CONFLICT_RADIUS,
) -> ConflictGraph:
    """Regular grid of ``rows x cols`` nodes.

    With the default spacing equal to the conflict radius, each node conflicts
    with its 4-neighbourhood (von Neumann neighbours).
    """
    if rows <= 0 or cols <= 0:
        raise ValueError(f"rows and cols must be positive, got {rows}x{cols}")
    ys, xs = np.divmod(np.arange(rows * cols, dtype=np.int64), cols)
    coords = np.stack((xs * spacing, ys * spacing), axis=1).astype(float)
    return _geometric_network(coords, num_channels, radius)


def ring_network(num_nodes: int, num_channels: int) -> ConflictGraph:
    """Cycle graph where node ``i`` conflicts with ``i-1`` and ``i+1``.

    Built combinatorially (no positions) so it stays a true cycle for any
    ``num_nodes >= 3``; for smaller sizes it degenerates to a path.
    """
    if num_nodes <= 0:
        raise ValueError(f"num_nodes must be positive, got {num_nodes}")
    edges = []
    if num_nodes >= 2:
        edges = [(i, (i + 1) % num_nodes) for i in range(num_nodes)]
        if num_nodes == 2:
            edges = [(0, 1)]
    return ConflictGraph(num_nodes, edges, num_channels)


def star_network(num_leaves: int, num_channels: int) -> ConflictGraph:
    """Star graph: node 0 is the hub conflicting with every leaf."""
    if num_leaves < 0:
        raise ValueError(f"num_leaves must be non-negative, got {num_leaves}")
    edges = [(0, leaf) for leaf in range(1, num_leaves + 1)]
    return ConflictGraph(num_leaves + 1, edges, num_channels)
