"""The original conflict graph ``G = (V, E, C)`` of the network model.

``G`` has one vertex per secondary user; an edge between two users means
their transmissions conflict when they access the same channel in the same
round (Section II of the paper).  The channel set ``C`` is carried along with
the graph because the number of channels ``M`` determines the size of the
extended conflict graph ``H``.

Adjacency is stored in **CSR form** (``indptr``/``indices`` int64 numpy
arrays with per-row sorted neighbours): a graph of ``10^5``–``10^6`` nodes
costs two flat arrays instead of ``n`` Python sets, construction from an
edge array is fully vectorised, and the BFS kernels in
:mod:`repro.graph.neighborhoods` can gather whole frontiers in numpy.  The
historical set-based accessors (:meth:`ConflictGraph.neighbors`,
:meth:`ConflictGraph.adjacency_sets`, …) are preserved as *views* built from
the CSR rows on demand — same contents, plain Python ints — so every
existing consumer keeps working unchanged; large-``n`` code should prefer
:meth:`ConflictGraph.csr_adjacency` / :meth:`ConflictGraph.neighbors_array`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.graph.geometry import Point

__all__ = ["ConflictGraph", "build_csr", "canonical_edge_array"]

EdgesLike = Union[Iterable[Tuple[int, int]], np.ndarray]


def canonical_edge_array(num_nodes: int, edges: EdgesLike) -> np.ndarray:
    """Validate and canonicalize an edge collection.

    Returns a deduplicated ``(m, 2)`` int64 array with ``lo < hi`` per row,
    sorted lexicographically.  Raises ``ValueError`` on the first
    out-of-range endpoint or self loop (checked in that order, matching the
    historical per-edge construction).
    """
    if isinstance(edges, np.ndarray):
        edge_array = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    else:
        edge_list = list(edges)
        edge_array = (
            np.array(edge_list, dtype=np.int64).reshape(-1, 2)
            if edge_list
            else np.zeros((0, 2), dtype=np.int64)
        )
    if edge_array.size == 0:
        return np.zeros((0, 2), dtype=np.int64)
    src, dst = edge_array[:, 0], edge_array[:, 1]
    bad = (src < 0) | (src >= num_nodes) | (dst < 0) | (dst >= num_nodes) | (src == dst)
    if bad.any():
        first = int(np.argmax(bad))
        i, j = int(src[first]), int(dst[first])
        if not (0 <= i < num_nodes and 0 <= j < num_nodes):
            raise ValueError(
                f"edge ({i}, {j}) out of range for {num_nodes} nodes"
            )
        raise ValueError(f"self loop ({i}, {j}) is not allowed")
    lo = np.minimum(src, dst)
    hi = np.maximum(src, dst)
    # One int64 key per undirected edge; unique() both dedupes and yields
    # the lexicographic (lo, hi) order.  Safe while n * n fits in int64.
    keys = np.unique(lo * np.int64(num_nodes) + hi)
    return np.stack((keys // num_nodes, keys % num_nodes), axis=1)


def build_csr(num_nodes: int, edge_array: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Build ``(indptr, indices)`` CSR adjacency from a canonical edge array.

    Both directions of every undirected edge are materialized; each row's
    neighbour list comes out sorted ascending.  The returned arrays are
    marked read-only — they are shared, not copied, by the accessors.
    """
    if edge_array.shape[0] == 0:
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        indices = np.zeros(0, dtype=np.int64)
    else:
        src = np.concatenate((edge_array[:, 0], edge_array[:, 1]))
        dst = np.concatenate((edge_array[:, 1], edge_array[:, 0]))
        order = np.lexsort((dst, src))
        indices = dst[order]
        counts = np.bincount(src, minlength=num_nodes)
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
    indptr.setflags(write=False)
    indices.setflags(write=False)
    return indptr, indices


class ConflictGraph:
    """Undirected conflict graph over ``N`` users with ``M`` channels.

    Parameters
    ----------
    num_nodes:
        Number of secondary users ``N``.
    edges:
        Iterable of ``(i, j)`` conflict pairs or an ``(m, 2)`` int64 array
        (the zero-copy path used by the topology generators at scale),
        ``0 <= i, j < num_nodes``.  Self loops are rejected; duplicate edges
        are merged.
    num_channels:
        Number of channels ``M`` available to every user.
    positions:
        Optional planar positions (used by unit-disk based topologies and kept
        for reproducibility and plotting; never required by the algorithms).
    """

    def __init__(
        self,
        num_nodes: int,
        edges: EdgesLike,
        num_channels: int,
        positions: Optional[Sequence[Point]] = None,
    ) -> None:
        if num_nodes <= 0:
            raise ValueError(f"num_nodes must be positive, got {num_nodes}")
        if num_channels <= 0:
            raise ValueError(f"num_channels must be positive, got {num_channels}")
        if positions is not None and len(positions) != num_nodes:
            raise ValueError(
                f"positions has {len(positions)} entries but num_nodes is {num_nodes}"
            )
        self._num_nodes = num_nodes
        self._num_channels = num_channels
        self._positions = list(positions) if positions is not None else None
        self._edge_array = canonical_edge_array(num_nodes, edges)
        self._edge_array.setflags(write=False)
        self._indptr, self._indices = build_csr(num_nodes, self._edge_array)

    @classmethod
    def from_adjacency(
        cls,
        adjacency: Sequence[Set[int]],
        num_channels: int,
        positions: Optional[Sequence[Point]] = None,
    ) -> "ConflictGraph":
        """Build a graph from a neighbour-set list (as produced by
        :func:`repro.graph.unit_disk.build_unit_disk_graph`)."""
        edges = [
            (i, j)
            for i, neighbors in enumerate(adjacency)
            for j in neighbors
            if i < j
        ]
        return cls(len(adjacency), edges, num_channels, positions=positions)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of users ``N``."""
        return self._num_nodes

    @property
    def num_channels(self) -> int:
        """Number of channels ``M``."""
        return self._num_channels

    @property
    def positions(self) -> Optional[List[Point]]:
        """Planar node positions if the graph was built geometrically."""
        return list(self._positions) if self._positions is not None else None

    def nodes(self) -> range:
        """Iterate over node ids ``0 .. N-1``."""
        return range(self._num_nodes)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over edges as ``(i, j)`` with ``i < j`` (lexicographic)."""
        for i, j in self._edge_array.tolist():
            yield (i, j)

    def edge_array(self) -> np.ndarray:
        """The canonical ``(m, 2)`` int64 edge array (read-only view)."""
        return self._edge_array

    def csr_adjacency(self) -> Tuple[np.ndarray, np.ndarray]:
        """The ``(indptr, indices)`` CSR adjacency (read-only views).

        ``indices[indptr[v]:indptr[v + 1]]`` is the sorted neighbour row of
        ``v`` — the zero-copy representation the BFS kernels and the macro
        benchmarks operate on.
        """
        return self._indptr, self._indices

    @property
    def num_edges(self) -> int:
        """Number of conflict edges."""
        return int(self._edge_array.shape[0])

    def neighbors(self, node: int) -> FrozenSet[int]:
        """Return the neighbour set of ``node`` (view of the CSR row)."""
        self._check_node(node)
        return frozenset(self._row(node).tolist())

    def neighbors_array(self, node: int) -> np.ndarray:
        """The sorted neighbour row of ``node`` as a read-only int64 view."""
        self._check_node(node)
        return self._row(node)

    def _row(self, node: int) -> np.ndarray:
        return self._indices[self._indptr[node] : self._indptr[node + 1]]

    def degree(self, node: int) -> int:
        """Degree of ``node``."""
        self._check_node(node)
        return int(self._indptr[node + 1] - self._indptr[node])

    def degrees(self) -> np.ndarray:
        """All node degrees as one int64 array."""
        return np.diff(self._indptr)

    def average_degree(self) -> float:
        """Average degree ``d`` of the graph (0 for an empty graph)."""
        if self._num_nodes == 0:
            return 0.0
        return 2.0 * self.num_edges / self._num_nodes

    def max_degree(self) -> int:
        """Maximum degree over all nodes."""
        if self._num_nodes == 0:
            return 0
        return int(np.diff(self._indptr).max(initial=0))

    def has_edge(self, i: int, j: int) -> bool:
        """Return ``True`` when ``i`` and ``j`` conflict."""
        self._check_node(i)
        self._check_node(j)
        row = self._row(i)
        slot = int(np.searchsorted(row, j))
        return slot < len(row) and int(row[slot]) == j

    def _check_node(self, node: int) -> None:
        if not (0 <= node < self._num_nodes):
            raise ValueError(f"node {node} out of range [0, {self._num_nodes})")

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def is_independent_set(self, nodes: Iterable[int]) -> bool:
        """Return ``True`` when no two nodes in ``nodes`` are adjacent."""
        selected = list(nodes)
        selected_set = set(selected)
        if len(selected_set) != len(selected):
            return False
        for node in selected_set:
            self._check_node(node)
            if not selected_set.isdisjoint(self._row(node).tolist()):
                return False
        return True

    def connected_components(self) -> List[Set[int]]:
        """Return the connected components as a list of node sets."""
        seen = np.zeros(self._num_nodes, dtype=bool)
        components: List[Set[int]] = []
        for start in range(self._num_nodes):
            if seen[start]:
                continue
            seen[start] = True
            frontier = np.array([start], dtype=np.int64)
            component: Set[int] = {start}
            while frontier.size:
                gathered = _gather_rows(self._indptr, self._indices, frontier)
                fresh = np.unique(gathered[~seen[gathered]])
                seen[fresh] = True
                component.update(fresh.tolist())
                frontier = fresh
            components.append(component)
        return components

    def is_connected(self) -> bool:
        """Return ``True`` when the graph has a single connected component."""
        return len(self.connected_components()) <= 1

    def subgraph(self, nodes: Iterable[int]) -> Tuple["ConflictGraph", Dict[int, int]]:
        """Return the induced subgraph and the old-id -> new-id mapping.

        Channel count and (when available) positions are preserved.
        """
        selected = sorted(set(nodes))
        for node in selected:
            self._check_node(node)
        if not selected:
            raise ValueError("subgraph() requires at least one node")
        mapping = {old: new for new, old in enumerate(selected)}
        lookup = np.full(self._num_nodes, -1, dtype=np.int64)
        lookup[selected] = np.arange(len(selected), dtype=np.int64)
        kept = self._edge_array[
            (lookup[self._edge_array[:, 0]] >= 0)
            & (lookup[self._edge_array[:, 1]] >= 0)
        ]
        positions = (
            [self._positions[node] for node in selected]
            if self._positions is not None
            else None
        )
        sub = ConflictGraph(
            len(selected), lookup[kept], self._num_channels, positions=positions
        )
        return sub, mapping

    def adjacency_sets(self) -> List[Set[int]]:
        """The adjacency structure as per-node Python sets (a fresh copy).

        This is the compatibility view consumed by the simulator, protocol
        and dynamics layers at paper scale; it materializes ``n`` sets of
        Python ints, so large-``n`` code should use :meth:`csr_adjacency`.
        """
        return [
            set(self._indices[self._indptr[i] : self._indptr[i + 1]].tolist())
            for i in range(self._num_nodes)
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"ConflictGraph(num_nodes={self._num_nodes}, "
            f"num_edges={self.num_edges}, num_channels={self._num_channels})"
        )


def _gather_rows(
    indptr: np.ndarray, indices: np.ndarray, vertices: np.ndarray
) -> np.ndarray:
    """Concatenate the CSR neighbour rows of ``vertices`` without a loop."""
    starts = indptr[vertices]
    counts = indptr[vertices + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    offsets = np.cumsum(counts) - counts
    flat = np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)
    return indices[np.repeat(starts, counts) + flat]
