"""The original conflict graph ``G = (V, E, C)`` of the network model.

``G`` has one vertex per secondary user; an edge between two users means
their transmissions conflict when they access the same channel in the same
round (Section II of the paper).  The channel set ``C`` is carried along with
the graph because the number of channels ``M`` determines the size of the
extended conflict graph ``H``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.graph.geometry import Point

__all__ = ["ConflictGraph"]


class ConflictGraph:
    """Undirected conflict graph over ``N`` users with ``M`` channels.

    Parameters
    ----------
    num_nodes:
        Number of secondary users ``N``.
    edges:
        Iterable of ``(i, j)`` conflict pairs, ``0 <= i, j < num_nodes``.
        Self loops are rejected; duplicate edges are merged.
    num_channels:
        Number of channels ``M`` available to every user.
    positions:
        Optional planar positions (used by unit-disk based topologies and kept
        for reproducibility and plotting; never required by the algorithms).
    """

    def __init__(
        self,
        num_nodes: int,
        edges: Iterable[Tuple[int, int]],
        num_channels: int,
        positions: Optional[Sequence[Point]] = None,
    ) -> None:
        if num_nodes <= 0:
            raise ValueError(f"num_nodes must be positive, got {num_nodes}")
        if num_channels <= 0:
            raise ValueError(f"num_channels must be positive, got {num_channels}")
        if positions is not None and len(positions) != num_nodes:
            raise ValueError(
                f"positions has {len(positions)} entries but num_nodes is {num_nodes}"
            )
        self._num_nodes = num_nodes
        self._num_channels = num_channels
        self._positions = list(positions) if positions is not None else None
        self._adjacency: List[Set[int]] = [set() for _ in range(num_nodes)]
        for i, j in edges:
            self._add_edge(i, j)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _add_edge(self, i: int, j: int) -> None:
        if not (0 <= i < self._num_nodes and 0 <= j < self._num_nodes):
            raise ValueError(
                f"edge ({i}, {j}) out of range for {self._num_nodes} nodes"
            )
        if i == j:
            raise ValueError(f"self loop ({i}, {j}) is not allowed")
        self._adjacency[i].add(j)
        self._adjacency[j].add(i)

    @classmethod
    def from_adjacency(
        cls,
        adjacency: Sequence[Set[int]],
        num_channels: int,
        positions: Optional[Sequence[Point]] = None,
    ) -> "ConflictGraph":
        """Build a graph from a neighbour-set list (as produced by
        :func:`repro.graph.unit_disk.build_unit_disk_graph`)."""
        edges = [
            (i, j)
            for i, neighbors in enumerate(adjacency)
            for j in neighbors
            if i < j
        ]
        return cls(len(adjacency), edges, num_channels, positions=positions)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of users ``N``."""
        return self._num_nodes

    @property
    def num_channels(self) -> int:
        """Number of channels ``M``."""
        return self._num_channels

    @property
    def positions(self) -> Optional[List[Point]]:
        """Planar node positions if the graph was built geometrically."""
        return list(self._positions) if self._positions is not None else None

    def nodes(self) -> range:
        """Iterate over node ids ``0 .. N-1``."""
        return range(self._num_nodes)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over edges as ``(i, j)`` with ``i < j``."""
        for i, neighbors in enumerate(self._adjacency):
            for j in neighbors:
                if i < j:
                    yield (i, j)

    @property
    def num_edges(self) -> int:
        """Number of conflict edges."""
        return sum(len(n) for n in self._adjacency) // 2

    def neighbors(self, node: int) -> FrozenSet[int]:
        """Return the neighbour set of ``node``."""
        self._check_node(node)
        return frozenset(self._adjacency[node])

    def degree(self, node: int) -> int:
        """Degree of ``node``."""
        self._check_node(node)
        return len(self._adjacency[node])

    def average_degree(self) -> float:
        """Average degree ``d`` of the graph (0 for an empty graph)."""
        if self._num_nodes == 0:
            return 0.0
        return 2.0 * self.num_edges / self._num_nodes

    def max_degree(self) -> int:
        """Maximum degree over all nodes."""
        return max((len(n) for n in self._adjacency), default=0)

    def has_edge(self, i: int, j: int) -> bool:
        """Return ``True`` when ``i`` and ``j`` conflict."""
        self._check_node(i)
        self._check_node(j)
        return j in self._adjacency[i]

    def _check_node(self, node: int) -> None:
        if not (0 <= node < self._num_nodes):
            raise ValueError(f"node {node} out of range [0, {self._num_nodes})")

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def is_independent_set(self, nodes: Iterable[int]) -> bool:
        """Return ``True`` when no two nodes in ``nodes`` are adjacent."""
        selected = list(nodes)
        selected_set = set(selected)
        if len(selected_set) != len(selected):
            return False
        for node in selected_set:
            self._check_node(node)
            if self._adjacency[node] & selected_set:
                return False
        return True

    def connected_components(self) -> List[Set[int]]:
        """Return the connected components as a list of node sets."""
        seen: Set[int] = set()
        components: List[Set[int]] = []
        for start in range(self._num_nodes):
            if start in seen:
                continue
            component: Set[int] = set()
            queue = deque([start])
            seen.add(start)
            while queue:
                node = queue.popleft()
                component.add(node)
                for neighbor in self._adjacency[node]:
                    if neighbor not in seen:
                        seen.add(neighbor)
                        queue.append(neighbor)
            components.append(component)
        return components

    def is_connected(self) -> bool:
        """Return ``True`` when the graph has a single connected component."""
        return len(self.connected_components()) <= 1

    def subgraph(self, nodes: Iterable[int]) -> Tuple["ConflictGraph", Dict[int, int]]:
        """Return the induced subgraph and the old-id -> new-id mapping.

        Channel count and (when available) positions are preserved.
        """
        selected = sorted(set(nodes))
        for node in selected:
            self._check_node(node)
        mapping = {old: new for new, old in enumerate(selected)}
        edges = [
            (mapping[i], mapping[j])
            for i, j in self.edges()
            if i in mapping and j in mapping
        ]
        positions = (
            [self._positions[node] for node in selected]
            if self._positions is not None
            else None
        )
        if not selected:
            raise ValueError("subgraph() requires at least one node")
        sub = ConflictGraph(
            len(selected), edges, self._num_channels, positions=positions
        )
        return sub, mapping

    def adjacency_sets(self) -> List[Set[int]]:
        """Return a copy of the adjacency structure."""
        return [set(neighbors) for neighbors in self._adjacency]

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"ConflictGraph(num_nodes={self._num_nodes}, "
            f"num_edges={self.num_edges}, num_channels={self._num_channels})"
        )
