"""Hop distances and r-hop neighbourhoods.

The robust PTAS and its distributed variant operate on r-hop neighbourhoods
``J_{G,r}(v) = {u : d_G(u, v) <= r}`` (Table I of the paper).  The helpers
here work on any adjacency-set representation, so they are shared by the
original conflict graph ``G`` and the extended conflict graph ``H``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Sequence, Set, Union

from repro.graph.conflict_graph import ConflictGraph
from repro.graph.extended import ExtendedConflictGraph

__all__ = [
    "hop_distances",
    "hop_distance",
    "r_hop_neighborhood",
    "all_r_hop_neighborhoods",
    "eccentricity",
    "graph_diameter",
]

AdjacencyLike = Union[Sequence[Set[int]], ConflictGraph, ExtendedConflictGraph]


def _adjacency(graph: AdjacencyLike) -> Sequence[Set[int]]:
    """Normalise the supported graph representations to adjacency sets."""
    if isinstance(graph, (ConflictGraph, ExtendedConflictGraph)):
        return graph.adjacency_sets()
    return graph


def hop_distances(graph: AdjacencyLike, source: int) -> Dict[int, int]:
    """Breadth-first hop distances from ``source`` to every reachable vertex.

    The source itself is at distance 0.  Unreachable vertices are omitted.
    """
    adjacency = _adjacency(graph)
    if not (0 <= source < len(adjacency)):
        raise ValueError(f"source {source} out of range [0, {len(adjacency)})")
    distances: Dict[int, int] = {source: 0}
    queue = deque([source])
    while queue:
        vertex = queue.popleft()
        for neighbor in adjacency[vertex]:
            if neighbor not in distances:
                distances[neighbor] = distances[vertex] + 1
                queue.append(neighbor)
    return distances


def hop_distance(graph: AdjacencyLike, source: int, target: int) -> float:
    """Hop distance ``d(source, target)``; ``inf`` when disconnected."""
    adjacency = _adjacency(graph)
    if not (0 <= target < len(adjacency)):
        raise ValueError(f"target {target} out of range [0, {len(adjacency)})")
    distances = hop_distances(adjacency, source)
    return float(distances.get(target, float("inf")))


def r_hop_neighborhood(graph: AdjacencyLike, vertex: int, r: int) -> Set[int]:
    """The r-hop neighbourhood ``J_r(vertex)`` *including* the vertex itself.

    Matches the paper's definition ``J_{G,r}(v) = {u : d_G(u, v) <= r}``.
    A truncated breadth-first search is used so only vertices within ``r``
    hops are ever visited.
    """
    if r < 0:
        raise ValueError(f"r must be non-negative, got {r}")
    adjacency = _adjacency(graph)
    if not (0 <= vertex < len(adjacency)):
        raise ValueError(f"vertex {vertex} out of range [0, {len(adjacency)})")
    reached: Set[int] = {vertex}
    frontier = {vertex}
    for _ in range(r):
        next_frontier: Set[int] = set()
        for current in frontier:
            for neighbor in adjacency[current]:
                if neighbor not in reached:
                    reached.add(neighbor)
                    next_frontier.add(neighbor)
        if not next_frontier:
            break
        frontier = next_frontier
    return reached


def all_r_hop_neighborhoods(graph: AdjacencyLike, r: int) -> List[Set[int]]:
    """Return ``J_r(v)`` for every vertex ``v`` of the graph."""
    adjacency = _adjacency(graph)
    return [r_hop_neighborhood(adjacency, vertex, r) for vertex in range(len(adjacency))]


def eccentricity(graph: AdjacencyLike, vertex: int) -> float:
    """Maximum hop distance from ``vertex`` to any reachable vertex.

    Returns ``inf`` when some vertex of the graph is unreachable.
    """
    adjacency = _adjacency(graph)
    distances = hop_distances(adjacency, vertex)
    if len(distances) < len(adjacency):
        return float("inf")
    return float(max(distances.values(), default=0))


def graph_diameter(graph: AdjacencyLike) -> float:
    """Diameter (maximum eccentricity); ``inf`` for disconnected graphs."""
    adjacency = _adjacency(graph)
    if not adjacency:
        return 0.0
    return max(eccentricity(adjacency, vertex) for vertex in range(len(adjacency)))
