"""Hop distances and r-hop neighbourhoods.

The robust PTAS and its distributed variant operate on r-hop neighbourhoods
``J_{G,r}(v) = {u : d_G(u, v) <= r}`` (Table I of the paper).  The helpers
here accept any adjacency-set sequence *or* a CSR-backed graph
(:class:`~repro.graph.conflict_graph.ConflictGraph`,
:class:`~repro.graph.extended.ExtendedConflictGraph`), so they are shared by
the original conflict graph ``G`` and the extended conflict graph ``H``.

Two implementations sit behind one API:

* CSR-backed graphs run a **frontier-based BFS** entirely on numpy arrays —
  each hop gathers the concatenated neighbour rows of the whole frontier in
  one shot, marks a boolean visited vector and dedupes with ``np.unique``.
  No per-vertex Python set is ever materialized on this path;
  :func:`r_hop_neighborhood_arrays` exposes the raw CSR-of-neighbourhoods
  form for bulk consumers (macro benchmarks, large-``n`` pipelines).
* Raw ``Sequence[Set[int]]`` adjacency (the live mutable structures of
  :mod:`repro.dynamics.graph`) keeps the original pure-Python traversal,
  bit for bit.

Equivalence of the two paths over every registered topology preset and
under random churn sequences is locked by
``tests/graph/test_csr_equivalence.py``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.graph.conflict_graph import ConflictGraph
from repro.graph.extended import ExtendedConflictGraph

__all__ = [
    "hop_distances",
    "hop_distance",
    "r_hop_neighborhood",
    "all_r_hop_neighborhoods",
    "r_hop_neighborhood_arrays",
    "eccentricity",
    "graph_diameter",
]

AdjacencyLike = Union[Sequence[Set[int]], ConflictGraph, ExtendedConflictGraph]

_CSRGraph = (ConflictGraph, ExtendedConflictGraph)


def _adjacency(graph: AdjacencyLike) -> Sequence[Set[int]]:
    """Normalise the supported graph representations to adjacency sets."""
    if isinstance(graph, _CSRGraph):
        return graph.adjacency_sets()
    return graph


def _size(graph: AdjacencyLike) -> int:
    if isinstance(graph, ConflictGraph):
        return graph.num_nodes
    if isinstance(graph, ExtendedConflictGraph):
        return graph.num_vertices
    return len(graph)


def _csr_bfs(
    indptr: np.ndarray,
    indices: np.ndarray,
    source: int,
    max_hops: Optional[int] = None,
) -> np.ndarray:
    """Frontier BFS over CSR adjacency; returns the hop-distance vector.

    Unvisited vertices hold ``-1``.  The traversal stops after ``max_hops``
    levels (or when the frontier empties), so truncated searches only ever
    touch the ball they return.
    """
    n = len(indptr) - 1
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    hops = 0
    while frontier.size and (max_hops is None or hops < max_hops):
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        offsets = np.cumsum(counts) - counts
        flat = np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)
        gathered = indices[np.repeat(starts, counts) + flat]
        fresh = gathered[dist[gathered] < 0]
        if fresh.size == 0:
            break
        frontier = np.unique(fresh)
        hops += 1
        dist[frontier] = hops
    return dist


def hop_distances(graph: AdjacencyLike, source: int) -> Dict[int, int]:
    """Breadth-first hop distances from ``source`` to every reachable vertex.

    The source itself is at distance 0.  Unreachable vertices are omitted.
    """
    n = _size(graph)
    if not (0 <= source < n):
        raise ValueError(f"source {source} out of range [0, {n})")
    if isinstance(graph, _CSRGraph):
        dist = _csr_bfs(*graph.csr_adjacency(), source)
        reached = np.flatnonzero(dist >= 0)
        return dict(zip(reached.tolist(), dist[reached].tolist()))
    adjacency = graph
    distances: Dict[int, int] = {source: 0}
    queue = deque([source])
    while queue:
        vertex = queue.popleft()
        for neighbor in adjacency[vertex]:
            if neighbor not in distances:
                distances[neighbor] = distances[vertex] + 1
                queue.append(neighbor)
    return distances


def hop_distance(graph: AdjacencyLike, source: int, target: int) -> float:
    """Hop distance ``d(source, target)``; ``inf`` when disconnected."""
    n = _size(graph)
    if not (0 <= target < n):
        raise ValueError(f"target {target} out of range [0, {n})")
    distances = hop_distances(graph, source)
    return float(distances.get(target, float("inf")))


def r_hop_neighborhood(graph: AdjacencyLike, vertex: int, r: int) -> Set[int]:
    """The r-hop neighbourhood ``J_r(vertex)`` *including* the vertex itself.

    Matches the paper's definition ``J_{G,r}(v) = {u : d_G(u, v) <= r}``.
    A truncated breadth-first search is used so only vertices within ``r``
    hops are ever visited.
    """
    if r < 0:
        raise ValueError(f"r must be non-negative, got {r}")
    n = _size(graph)
    if not (0 <= vertex < n):
        raise ValueError(f"vertex {vertex} out of range [0, {n})")
    if isinstance(graph, _CSRGraph):
        dist = _csr_bfs(*graph.csr_adjacency(), vertex, max_hops=r)
        return set(np.flatnonzero(dist >= 0).tolist())
    adjacency = graph
    reached: Set[int] = {vertex}
    frontier = {vertex}
    for _ in range(r):
        next_frontier: Set[int] = set()
        for current in frontier:
            for neighbor in adjacency[current]:
                if neighbor not in reached:
                    reached.add(neighbor)
                    next_frontier.add(neighbor)
        if not next_frontier:
            break
        frontier = next_frontier
    return reached


def all_r_hop_neighborhoods(graph: AdjacencyLike, r: int) -> List[Set[int]]:
    """Return ``J_r(v)`` for every vertex ``v`` of the graph."""
    if isinstance(graph, _CSRGraph):
        return [
            r_hop_neighborhood(graph, vertex, r) for vertex in range(_size(graph))
        ]
    adjacency = _adjacency(graph)
    return [r_hop_neighborhood(adjacency, vertex, r) for vertex in range(len(adjacency))]


def r_hop_neighborhood_arrays(
    graph: Union[ConflictGraph, ExtendedConflictGraph], r: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Every ``J_r(v)`` packed as CSR-of-neighbourhoods arrays.

    Returns ``(offsets, members)``: the (sorted) members of ``J_r(v)`` are
    ``members[offsets[v]:offsets[v + 1]]``.  This is the large-``n`` bulk
    form — no per-vertex Python set is created.  Only CSR-backed graphs are
    supported; raw adjacency-set consumers keep
    :func:`all_r_hop_neighborhoods`.
    """
    if r < 0:
        raise ValueError(f"r must be non-negative, got {r}")
    indptr, indices = graph.csr_adjacency()
    n = len(indptr) - 1
    hoods: List[np.ndarray] = []
    sizes = np.zeros(n, dtype=np.int64)
    for vertex in range(n):
        dist = _csr_bfs(indptr, indices, vertex, max_hops=r)
        ball = np.flatnonzero(dist >= 0)
        sizes[vertex] = ball.size
        hoods.append(ball)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    members = (
        np.concatenate(hoods) if hoods else np.zeros(0, dtype=np.int64)
    )
    return offsets, members


def eccentricity(graph: AdjacencyLike, vertex: int) -> float:
    """Maximum hop distance from ``vertex`` to any reachable vertex.

    Returns ``inf`` when some vertex of the graph is unreachable.
    """
    distances = hop_distances(graph, vertex)
    if len(distances) < _size(graph):
        return float("inf")
    return float(max(distances.values(), default=0))


def graph_diameter(graph: AdjacencyLike) -> float:
    """Diameter (maximum eccentricity); ``inf`` for disconnected graphs."""
    n = _size(graph)
    if not n:
        return 0.0
    return max(eccentricity(graph, vertex) for vertex in range(n))
