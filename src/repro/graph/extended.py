"""The extended conflict graph ``H`` (Section III, Fig. 1 of the paper).

For every user ``i`` of the original conflict graph ``G`` and every channel
``j`` we create a *virtual vertex* ``v_{i,j}``.  Edges of ``H``:

* the virtual vertices of the same *master* node form a clique (a user can
  access at most one channel per round), and
* ``v_{i,j}`` is connected to ``v_{p,j}`` whenever ``(i, p)`` is a conflict
  edge of ``G`` (two conflicting users cannot share a channel).

An independent set of ``H`` therefore corresponds one-to-one to a feasible
channel-allocation strategy of ``G``.

Like :class:`~repro.graph.conflict_graph.ConflictGraph`, the adjacency of
``H`` is stored in CSR form and *constructed vectorised* from ``G``'s edge
array: the ``N * M(M-1)/2`` clique edges and ``|E| * M`` same-channel edges
are generated as flat numpy index arithmetic, never as per-vertex Python
sets.  At ``N = 10^5, M = 5`` that is ~2.5 million edges built in well under
a second, where the historical nested-loop build took minutes.  Set-based
accessors remain available as on-demand views.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Sequence, Set, Tuple

import numpy as np

from repro.graph.conflict_graph import ConflictGraph, build_csr

__all__ = ["VirtualVertex", "ExtendedConflictGraph"]


@dataclass(frozen=True, order=True)
class VirtualVertex:
    """A virtual vertex ``v_{node, channel}`` of the extended graph.

    ``node`` is the master user id in ``G`` and ``channel`` the channel index.
    """

    node: int
    channel: int


class ExtendedConflictGraph:
    """Extended conflict graph ``H`` built from a :class:`ConflictGraph`.

    Vertices are indexed by the flat id ``k = node * M + channel`` which is
    also the *arm index* used by the learning policies (the paper maps the
    pair ``(i, s_{x,i})`` to a single arm index in exactly this spirit).
    """

    def __init__(self, conflict_graph: ConflictGraph) -> None:
        self._graph = conflict_graph
        self._num_nodes = conflict_graph.num_nodes
        self._num_channels = conflict_graph.num_channels
        self._num_vertices = self._num_nodes * self._num_channels
        self._edge_array = self._build_edge_array()
        self._edge_array.setflags(write=False)
        self._indptr, self._indices = build_csr(self._num_vertices, self._edge_array)

    def _build_edge_array(self) -> np.ndarray:
        """All edges of ``H`` as a canonical ``(m, 2)`` int64 array."""
        m = self._num_channels
        parts: List[np.ndarray] = []
        if m > 1:
            # Clique among virtual vertices of the same master node: every
            # in-node channel pair (a, b), a < b, shifted by each node base.
            a, b = np.triu_indices(m, k=1)
            bases = np.arange(self._num_nodes, dtype=np.int64) * m
            parts.append(
                np.stack(
                    (
                        (bases[:, None] + a[None, :]).ravel(),
                        (bases[:, None] + b[None, :]).ravel(),
                    ),
                    axis=1,
                )
            )
        conflicts = self._graph.edge_array()
        if conflicts.shape[0]:
            # Same-channel edges between conflicting masters: each G edge
            # (i, j) with i < j lifts to (i*M + c, j*M + c) for every c.
            channels = np.arange(m, dtype=np.int64)
            parts.append(
                np.stack(
                    (
                        (conflicts[:, 0:1] * m + channels[None, :]).ravel(),
                        (conflicts[:, 1:2] * m + channels[None, :]).ravel(),
                    ),
                    axis=1,
                )
            )
        if not parts:
            return np.zeros((0, 2), dtype=np.int64)
        edges = np.concatenate(parts, axis=0)
        # Rows already satisfy lo < hi and are duplicate-free by
        # construction; sort lexicographically for the canonical order.
        order = np.lexsort((edges[:, 1], edges[:, 0]))
        return edges[order]

    # ------------------------------------------------------------------
    # Index conversions
    # ------------------------------------------------------------------
    @property
    def conflict_graph(self) -> ConflictGraph:
        """The underlying original conflict graph ``G``."""
        return self._graph

    @property
    def num_nodes(self) -> int:
        """Number of master nodes ``N``."""
        return self._num_nodes

    @property
    def num_channels(self) -> int:
        """Number of channels ``M``."""
        return self._num_channels

    @property
    def num_vertices(self) -> int:
        """Number of virtual vertices ``K = N * M``."""
        return self._num_vertices

    def vertex_index(self, node: int, channel: int) -> int:
        """Flat arm index of virtual vertex ``v_{node, channel}``."""
        if not (0 <= node < self._num_nodes):
            raise ValueError(f"node {node} out of range [0, {self._num_nodes})")
        if not (0 <= channel < self._num_channels):
            raise ValueError(
                f"channel {channel} out of range [0, {self._num_channels})"
            )
        return node * self._num_channels + channel

    def vertex(self, index: int) -> VirtualVertex:
        """Return the :class:`VirtualVertex` for a flat index."""
        self._check_vertex(index)
        node, channel = divmod(index, self._num_channels)
        return VirtualVertex(node=node, channel=channel)

    def master_of(self, index: int) -> int:
        """Master node id of a virtual vertex."""
        self._check_vertex(index)
        return index // self._num_channels

    def channel_of(self, index: int) -> int:
        """Channel index of a virtual vertex."""
        self._check_vertex(index)
        return index % self._num_channels

    def vertices(self) -> range:
        """Iterate over flat vertex indices ``0 .. K-1``."""
        return range(self._num_vertices)

    def _check_vertex(self, index: int) -> None:
        if not (0 <= index < self._num_vertices):
            raise ValueError(
                f"vertex {index} out of range [0, {self._num_vertices})"
            )

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------
    def _row(self, index: int) -> np.ndarray:
        return self._indices[self._indptr[index] : self._indptr[index + 1]]

    def neighbors(self, index: int) -> FrozenSet[int]:
        """Neighbour set of a virtual vertex (same-master clique plus
        same-channel conflict neighbours)."""
        self._check_vertex(index)
        return frozenset(self._row(index).tolist())

    def neighbors_array(self, index: int) -> np.ndarray:
        """The sorted neighbour row of a virtual vertex (read-only view)."""
        self._check_vertex(index)
        return self._row(index)

    def degree(self, index: int) -> int:
        """Degree of a virtual vertex in ``H``."""
        self._check_vertex(index)
        return int(self._indptr[index + 1] - self._indptr[index])

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over edges of ``H`` as ``(u, v)`` with ``u < v``."""
        for u, v in self._edge_array.tolist():
            yield (u, v)

    def edge_array(self) -> np.ndarray:
        """The canonical ``(m, 2)`` int64 edge array of ``H`` (read-only)."""
        return self._edge_array

    def csr_adjacency(self) -> Tuple[np.ndarray, np.ndarray]:
        """The ``(indptr, indices)`` CSR adjacency of ``H`` (read-only)."""
        return self._indptr, self._indices

    @property
    def num_edges(self) -> int:
        """Number of edges of ``H``."""
        return int(self._edge_array.shape[0])

    def has_edge(self, u: int, v: int) -> bool:
        """Return ``True`` when virtual vertices ``u`` and ``v`` conflict."""
        self._check_vertex(u)
        self._check_vertex(v)
        row = self._row(u)
        slot = int(np.searchsorted(row, v))
        return slot < len(row) and int(row[slot]) == v

    def adjacency_sets(self) -> List[Set[int]]:
        """The adjacency of ``H`` as per-vertex Python sets (a fresh copy).

        Compatibility view for the protocol/simulator layers; large-``n``
        code should use :meth:`csr_adjacency` instead.
        """
        return [
            set(self._indices[self._indptr[v] : self._indptr[v + 1]].tolist())
            for v in range(self._num_vertices)
        ]

    # ------------------------------------------------------------------
    # Independent sets <-> strategies
    # ------------------------------------------------------------------
    def is_independent_set(self, vertices: Iterable[int]) -> bool:
        """Return ``True`` when ``vertices`` is an independent set of ``H``."""
        selected = list(vertices)
        selected_set = set(selected)
        if len(selected_set) != len(selected):
            return False
        for vertex in selected_set:
            self._check_vertex(vertex)
            if not selected_set.isdisjoint(self._row(vertex).tolist()):
                return False
        return True

    def independent_set_to_assignment(
        self, vertices: Iterable[int]
    ) -> Dict[int, int]:
        """Convert an independent set of ``H`` to a ``{node: channel}`` map.

        Raises ``ValueError`` if the set is not independent (which would mean
        either two channels for the same user or a same-channel conflict).
        """
        selected = list(vertices)
        if not self.is_independent_set(selected):
            raise ValueError("vertex set is not an independent set of H")
        assignment: Dict[int, int] = {}
        for vertex in selected:
            assignment[self.master_of(vertex)] = self.channel_of(vertex)
        return assignment

    def assignment_to_independent_set(
        self, assignment: Mapping[int, int]
    ) -> List[int]:
        """Convert a ``{node: channel}`` map to a sorted vertex-index list.

        The assignment must be conflict free; otherwise ``ValueError`` is
        raised with the first offending pair.
        """
        vertices = sorted(
            self.vertex_index(node, channel) for node, channel in assignment.items()
        )
        for node, channel in assignment.items():
            for other in self._graph.neighbors(node):
                if assignment.get(other) == channel:
                    raise ValueError(
                        f"nodes {node} and {other} both assigned channel {channel} "
                        "but they conflict"
                    )
        return vertices

    def weight_of(self, vertices: Iterable[int], weights: Sequence[float]) -> float:
        """Summed weight ``W(I)`` of a vertex set under a flat weight vector."""
        total = 0.0
        for vertex in vertices:
            self._check_vertex(vertex)
            total += float(weights[vertex])
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"ExtendedConflictGraph(N={self._num_nodes}, M={self._num_channels}, "
            f"K={self._num_vertices}, edges={self.num_edges})"
        )
