"""The extended conflict graph ``H`` (Section III, Fig. 1 of the paper).

For every user ``i`` of the original conflict graph ``G`` and every channel
``j`` we create a *virtual vertex* ``v_{i,j}``.  Edges of ``H``:

* the virtual vertices of the same *master* node form a clique (a user can
  access at most one channel per round), and
* ``v_{i,j}`` is connected to ``v_{p,j}`` whenever ``(i, p)`` is a conflict
  edge of ``G`` (two conflicting users cannot share a channel).

An independent set of ``H`` therefore corresponds one-to-one to a feasible
channel-allocation strategy of ``G``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Sequence, Set, Tuple

from repro.graph.conflict_graph import ConflictGraph

__all__ = ["VirtualVertex", "ExtendedConflictGraph"]


@dataclass(frozen=True, order=True)
class VirtualVertex:
    """A virtual vertex ``v_{node, channel}`` of the extended graph.

    ``node`` is the master user id in ``G`` and ``channel`` the channel index.
    """

    node: int
    channel: int


class ExtendedConflictGraph:
    """Extended conflict graph ``H`` built from a :class:`ConflictGraph`.

    Vertices are indexed by the flat id ``k = node * M + channel`` which is
    also the *arm index* used by the learning policies (the paper maps the
    pair ``(i, s_{x,i})`` to a single arm index in exactly this spirit).
    """

    def __init__(self, conflict_graph: ConflictGraph) -> None:
        self._graph = conflict_graph
        self._num_nodes = conflict_graph.num_nodes
        self._num_channels = conflict_graph.num_channels
        self._num_vertices = self._num_nodes * self._num_channels
        self._adjacency: List[Set[int]] = [set() for _ in range(self._num_vertices)]
        self._build_edges()

    def _build_edges(self) -> None:
        m = self._num_channels
        # Clique among virtual vertices of the same master node.
        for node in range(self._num_nodes):
            base = node * m
            for a in range(m):
                for b in range(a + 1, m):
                    self._adjacency[base + a].add(base + b)
                    self._adjacency[base + b].add(base + a)
        # Same-channel edges between conflicting masters.
        for i, j in self._graph.edges():
            for channel in range(m):
                u = i * m + channel
                v = j * m + channel
                self._adjacency[u].add(v)
                self._adjacency[v].add(u)

    # ------------------------------------------------------------------
    # Index conversions
    # ------------------------------------------------------------------
    @property
    def conflict_graph(self) -> ConflictGraph:
        """The underlying original conflict graph ``G``."""
        return self._graph

    @property
    def num_nodes(self) -> int:
        """Number of master nodes ``N``."""
        return self._num_nodes

    @property
    def num_channels(self) -> int:
        """Number of channels ``M``."""
        return self._num_channels

    @property
    def num_vertices(self) -> int:
        """Number of virtual vertices ``K = N * M``."""
        return self._num_vertices

    def vertex_index(self, node: int, channel: int) -> int:
        """Flat arm index of virtual vertex ``v_{node, channel}``."""
        if not (0 <= node < self._num_nodes):
            raise ValueError(f"node {node} out of range [0, {self._num_nodes})")
        if not (0 <= channel < self._num_channels):
            raise ValueError(
                f"channel {channel} out of range [0, {self._num_channels})"
            )
        return node * self._num_channels + channel

    def vertex(self, index: int) -> VirtualVertex:
        """Return the :class:`VirtualVertex` for a flat index."""
        self._check_vertex(index)
        node, channel = divmod(index, self._num_channels)
        return VirtualVertex(node=node, channel=channel)

    def master_of(self, index: int) -> int:
        """Master node id of a virtual vertex."""
        self._check_vertex(index)
        return index // self._num_channels

    def channel_of(self, index: int) -> int:
        """Channel index of a virtual vertex."""
        self._check_vertex(index)
        return index % self._num_channels

    def vertices(self) -> range:
        """Iterate over flat vertex indices ``0 .. K-1``."""
        return range(self._num_vertices)

    def _check_vertex(self, index: int) -> None:
        if not (0 <= index < self._num_vertices):
            raise ValueError(
                f"vertex {index} out of range [0, {self._num_vertices})"
            )

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------
    def neighbors(self, index: int) -> FrozenSet[int]:
        """Neighbour set of a virtual vertex (same-master clique plus
        same-channel conflict neighbours)."""
        self._check_vertex(index)
        return frozenset(self._adjacency[index])

    def degree(self, index: int) -> int:
        """Degree of a virtual vertex in ``H``."""
        self._check_vertex(index)
        return len(self._adjacency[index])

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over edges of ``H`` as ``(u, v)`` with ``u < v``."""
        for u, neighbors in enumerate(self._adjacency):
            for v in neighbors:
                if u < v:
                    yield (u, v)

    @property
    def num_edges(self) -> int:
        """Number of edges of ``H``."""
        return sum(len(n) for n in self._adjacency) // 2

    def has_edge(self, u: int, v: int) -> bool:
        """Return ``True`` when virtual vertices ``u`` and ``v`` conflict."""
        self._check_vertex(u)
        self._check_vertex(v)
        return v in self._adjacency[u]

    def adjacency_sets(self) -> List[Set[int]]:
        """Return a copy of the adjacency structure of ``H``."""
        return [set(neighbors) for neighbors in self._adjacency]

    # ------------------------------------------------------------------
    # Independent sets <-> strategies
    # ------------------------------------------------------------------
    def is_independent_set(self, vertices: Iterable[int]) -> bool:
        """Return ``True`` when ``vertices`` is an independent set of ``H``."""
        selected = list(vertices)
        selected_set = set(selected)
        if len(selected_set) != len(selected):
            return False
        for vertex in selected_set:
            self._check_vertex(vertex)
            if self._adjacency[vertex] & selected_set:
                return False
        return True

    def independent_set_to_assignment(
        self, vertices: Iterable[int]
    ) -> Dict[int, int]:
        """Convert an independent set of ``H`` to a ``{node: channel}`` map.

        Raises ``ValueError`` if the set is not independent (which would mean
        either two channels for the same user or a same-channel conflict).
        """
        selected = list(vertices)
        if not self.is_independent_set(selected):
            raise ValueError("vertex set is not an independent set of H")
        assignment: Dict[int, int] = {}
        for vertex in selected:
            assignment[self.master_of(vertex)] = self.channel_of(vertex)
        return assignment

    def assignment_to_independent_set(
        self, assignment: Mapping[int, int]
    ) -> List[int]:
        """Convert a ``{node: channel}`` map to a sorted vertex-index list.

        The assignment must be conflict free; otherwise ``ValueError`` is
        raised with the first offending pair.
        """
        vertices = sorted(
            self.vertex_index(node, channel) for node, channel in assignment.items()
        )
        for node, channel in assignment.items():
            for other in self._graph.neighbors(node):
                if assignment.get(other) == channel:
                    raise ValueError(
                        f"nodes {node} and {other} both assigned channel {channel} "
                        "but they conflict"
                    )
        return vertices

    def weight_of(self, vertices: Iterable[int], weights: Sequence[float]) -> float:
        """Summed weight ``W(I)`` of a vertex set under a flat weight vector."""
        total = 0.0
        for vertex in vertices:
            self._check_vertex(vertex)
            total += float(weights[vertex])
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"ExtendedConflictGraph(N={self._num_nodes}, M={self._num_channels}, "
            f"K={self._num_vertices}, edges={self.num_edges})"
        )
