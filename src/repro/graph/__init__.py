"""Graph substrate: unit-disk conflict graphs and the extended conflict graph.

The paper models a multi-hop cognitive radio network as a unit-disk conflict
graph ``G = (V, E, C)`` over ``N`` secondary users sharing ``M`` channels, and
re-models the channel allocation problem on an *extended conflict graph*
``H`` with ``N * M`` virtual vertices (Section III, Fig. 1).

This subpackage provides:

* :mod:`repro.graph.geometry` -- planar point utilities.
* :mod:`repro.graph.unit_disk` -- unit-disk graph construction.
* :mod:`repro.graph.conflict_graph` -- the original conflict graph ``G``.
* :mod:`repro.graph.extended` -- the extended conflict graph ``H``.
* :mod:`repro.graph.neighborhoods` -- hop distances and r-hop neighbourhoods.
* :mod:`repro.graph.topology` -- topology generators (random, linear, grid...).
"""

from repro.graph.geometry import Point, grid_cell_keys, pairwise_distances
from repro.graph.conflict_graph import ConflictGraph
from repro.graph.extended import ExtendedConflictGraph, VirtualVertex
from repro.graph.neighborhoods import (
    all_r_hop_neighborhoods,
    hop_distances,
    r_hop_neighborhood,
    r_hop_neighborhood_arrays,
    hop_distance,
    eccentricity,
)
from repro.graph.unit_disk import (
    build_unit_disk_graph,
    unit_disk_edge_array,
    unit_disk_edges,
    unit_disk_edges_naive,
)
from repro.graph.topology import (
    random_network,
    linear_network,
    grid_network,
    ring_network,
    star_network,
    connected_random_network,
)

__all__ = [
    "Point",
    "pairwise_distances",
    "ConflictGraph",
    "ExtendedConflictGraph",
    "VirtualVertex",
    "grid_cell_keys",
    "hop_distances",
    "hop_distance",
    "r_hop_neighborhood",
    "r_hop_neighborhood_arrays",
    "all_r_hop_neighborhoods",
    "eccentricity",
    "unit_disk_edges",
    "unit_disk_edge_array",
    "unit_disk_edges_naive",
    "build_unit_disk_graph",
    "random_network",
    "linear_network",
    "grid_network",
    "ring_network",
    "star_network",
    "connected_random_network",
]
