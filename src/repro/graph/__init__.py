"""Graph substrate: unit-disk conflict graphs and the extended conflict graph.

The paper models a multi-hop cognitive radio network as a unit-disk conflict
graph ``G = (V, E, C)`` over ``N`` secondary users sharing ``M`` channels, and
re-models the channel allocation problem on an *extended conflict graph*
``H`` with ``N * M`` virtual vertices (Section III, Fig. 1).

This subpackage provides:

* :mod:`repro.graph.geometry` -- planar point utilities.
* :mod:`repro.graph.unit_disk` -- unit-disk graph construction.
* :mod:`repro.graph.conflict_graph` -- the original conflict graph ``G``.
* :mod:`repro.graph.extended` -- the extended conflict graph ``H``.
* :mod:`repro.graph.neighborhoods` -- hop distances and r-hop neighbourhoods.
* :mod:`repro.graph.topology` -- topology generators (random, linear, grid...).
"""

from repro.graph.geometry import Point, pairwise_distances
from repro.graph.conflict_graph import ConflictGraph
from repro.graph.extended import ExtendedConflictGraph, VirtualVertex
from repro.graph.neighborhoods import (
    hop_distances,
    r_hop_neighborhood,
    hop_distance,
    eccentricity,
)
from repro.graph.unit_disk import unit_disk_edges, build_unit_disk_graph
from repro.graph.topology import (
    random_network,
    linear_network,
    grid_network,
    ring_network,
    star_network,
    connected_random_network,
)

__all__ = [
    "Point",
    "pairwise_distances",
    "ConflictGraph",
    "ExtendedConflictGraph",
    "VirtualVertex",
    "hop_distances",
    "hop_distance",
    "r_hop_neighborhood",
    "eccentricity",
    "unit_disk_edges",
    "build_unit_disk_graph",
    "random_network",
    "linear_network",
    "grid_network",
    "ring_network",
    "star_network",
    "connected_random_network",
]
