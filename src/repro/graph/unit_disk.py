"""Unit-disk graph construction.

An edge ``(u, v)`` exists in a unit-disk graph when the Euclidean distance
between the nodes is at most the *conflict radius*.  The paper treats each
node as a unit disk centred on itself, so two disks intersect when their
centres are within distance 2; we keep the radius configurable because the
topology generators (``repro.graph.topology``) use it to control the average
degree of random networks.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

import numpy as np

from repro.graph.geometry import Point, pairwise_distances

__all__ = ["unit_disk_edges", "build_unit_disk_graph", "DEFAULT_CONFLICT_RADIUS"]

#: Conflict radius implied by the paper's unit-disk model (two unit disks
#: intersect when their centres are within distance 2).
DEFAULT_CONFLICT_RADIUS = 2.0


def unit_disk_edges(
    points: Sequence[Point], radius: float = DEFAULT_CONFLICT_RADIUS
) -> List[Tuple[int, int]]:
    """Return the edge list of the unit-disk graph over ``points``.

    Edges are returned as ``(i, j)`` index pairs with ``i < j``.  Nodes at
    distance exactly ``radius`` are considered in conflict (closed disk),
    matching the paper's ``||u, v|| <= 2`` convention.
    """
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")
    dist = pairwise_distances(points)
    n = dist.shape[0]
    edges: List[Tuple[int, int]] = []
    if n == 0:
        return edges
    iu, ju = np.triu_indices(n, k=1)
    mask = dist[iu, ju] <= radius
    for i, j in zip(iu[mask], ju[mask]):
        edges.append((int(i), int(j)))
    return edges


def build_unit_disk_graph(
    points: Sequence[Point], radius: float = DEFAULT_CONFLICT_RADIUS
) -> List[Set[int]]:
    """Return the adjacency structure of the unit-disk graph over ``points``.

    The result is a list of neighbour sets indexed by node id; it is the raw
    representation consumed by :class:`repro.graph.conflict_graph.ConflictGraph`.
    """
    n = len(points)
    adjacency: List[Set[int]] = [set() for _ in range(n)]
    for i, j in unit_disk_edges(points, radius=radius):
        adjacency[i].add(j)
        adjacency[j].add(i)
    return adjacency
