"""Unit-disk graph construction.

An edge ``(u, v)`` exists in a unit-disk graph when the Euclidean distance
between the nodes is at most the *conflict radius*.  The paper treats each
node as a unit disk centred on itself, so two disks intersect when their
centres are within distance 2; we keep the radius configurable because the
topology generators (``repro.graph.topology``) use it to control the average
degree of random networks.

Two builders share one distance predicate:

* :func:`unit_disk_edge_array` — the production path.  Points are bucketed
  into a spatial grid of cell side ``radius``
  (:func:`repro.graph.geometry.grid_cell_keys`); candidate pairs are drawn
  only from the same or adjacent cells, and the whole pipeline (bucketing,
  block cartesian products, distance filter, canonical sort) is vectorised
  numpy.  Expected cost is ``O(n + m)`` for the near-uniform deployments the
  topology generators produce, against ``O(n^2)`` for the naive builder —
  the difference between milliseconds and minutes at ``n = 10^5``.
* :func:`unit_disk_edges_naive` — the original all-pairs reference, kept as
  ground truth for the randomized property tests
  (``tests/graph/test_unit_disk.py``) and the macro speedup benchmark
  (``benchmarks/test_bench_macro.py``).

Both builders evaluate the *bit-identical* predicate
``sqrt(dx*dx + dy*dy) <= radius`` in float64 and emit edges as ``(i, j)``
index pairs with ``i < j`` in lexicographic order, so their edge sets —
including ties at distance exactly ``radius`` — are equal element for
element.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

import numpy as np

from repro.graph.geometry import Point, grid_cell_keys, points_to_array

__all__ = [
    "unit_disk_edges",
    "unit_disk_edge_array",
    "unit_disk_edges_naive",
    "build_unit_disk_graph",
    "DEFAULT_CONFLICT_RADIUS",
]

#: Conflict radius implied by the paper's unit-disk model (two unit disks
#: intersect when their centres are within distance 2).
DEFAULT_CONFLICT_RADIUS = 2.0

#: Row-block size of the naive reference builder; bounds its peak memory at
#: ``block * n`` floats instead of the full ``n x n`` distance matrix.
_NAIVE_BLOCK = 1024


def _block_pairs(
    starts_a: np.ndarray,
    counts_a: np.ndarray,
    starts_b: np.ndarray,
    counts_b: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """All (row of block a) x (row of block b) index pairs, fully vectorised.

    ``starts``/``counts`` describe contiguous blocks in a sorted point
    array; the result enumerates the cartesian product of every aligned
    block pair without a Python-level loop over blocks.
    """
    pair_counts = counts_a * counts_b
    total = int(pair_counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    offsets = np.cumsum(pair_counts) - pair_counts
    flat = np.arange(total, dtype=np.int64) - np.repeat(offsets, pair_counts)
    width = np.repeat(counts_b, pair_counts)
    ai = flat // width
    bi = flat - ai * width
    return np.repeat(starts_a, pair_counts) + ai, np.repeat(starts_b, pair_counts) + bi


def unit_disk_edge_array(
    points: Sequence[Point], radius: float = DEFAULT_CONFLICT_RADIUS
) -> np.ndarray:
    """Spatial-grid (cell-bucket) unit-disk edge construction.

    Accepts either a sequence of :class:`Point` or an ``(n, 2)`` coordinate
    array and returns the edges as an ``(m, 2)`` int64 array of ``(i, j)``
    pairs with ``i < j``, sorted lexicographically — exactly the output of
    :func:`unit_disk_edges_naive` (same float predicate, same order).

    Cells have side ``radius``, so every conflicting pair lies in the same
    or an adjacent cell; each unordered cell pair is visited exactly once
    via the four forward offsets (E, NW, N, NE), which keeps candidates
    duplicate-free by construction.
    """
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")
    coords = points_to_array(points)
    n = coords.shape[0]
    if n < 2:
        return np.zeros((0, 2), dtype=np.int64)
    keys, stride = grid_cell_keys(coords, radius)
    order = np.argsort(keys, kind="stable")
    cells, starts, counts = np.unique(
        keys[order], return_index=True, return_counts=True
    )
    left_parts: List[np.ndarray] = []
    right_parts: List[np.ndarray] = []
    # Offset 0 = same cell; the rest pair each cell with its E / NW / N / NE
    # neighbour (all strictly larger keys, so each cell pair appears once).
    for offset in (0, 1, stride - 1, stride, stride + 1):
        if offset == 0:
            li, ri = _block_pairs(starts, counts, starts, counts)
            keep = li < ri  # upper triangle: each in-cell pair once
            li, ri = li[keep], ri[keep]
        else:
            slot = np.searchsorted(cells, cells + offset)
            slot = np.minimum(slot, len(cells) - 1)
            hit = cells[slot] == cells + offset
            li, ri = _block_pairs(
                starts[hit], counts[hit], starts[slot[hit]], counts[slot[hit]]
            )
        if li.size:
            left_parts.append(li)
            right_parts.append(ri)
    if not left_parts:
        return np.zeros((0, 2), dtype=np.int64)
    cand_i = order[np.concatenate(left_parts)]
    cand_j = order[np.concatenate(right_parts)]
    dx = coords[cand_i, 0] - coords[cand_j, 0]
    dy = coords[cand_i, 1] - coords[cand_j, 1]
    within = np.sqrt(dx * dx + dy * dy) <= radius
    cand_i, cand_j = cand_i[within], cand_j[within]
    lo = np.minimum(cand_i, cand_j)
    hi = np.maximum(cand_i, cand_j)
    canonical = np.lexsort((hi, lo))
    return np.stack((lo[canonical], hi[canonical]), axis=1)


def unit_disk_edges_naive(
    points: Sequence[Point], radius: float = DEFAULT_CONFLICT_RADIUS
) -> np.ndarray:
    """All-pairs O(n^2) reference builder (the pre-grid implementation).

    Retained as the ground truth the grid builder is property-tested against
    and as the baseline of the macro speedup benchmark.  Distances are
    evaluated in row blocks so the reference stays runnable at ``n = 10^4``
    without materializing the full ``n x n`` matrix; the float operations
    per pair are identical to the historical full-matrix version.
    """
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")
    coords = points_to_array(points)
    n = coords.shape[0]
    rows: List[np.ndarray] = []
    cols: List[np.ndarray] = []
    for start in range(0, n, _NAIVE_BLOCK):
        block = coords[start : start + _NAIVE_BLOCK]
        diff = block[:, None, :] - coords[None, :, :]
        dist = np.sqrt((diff**2).sum(axis=-1))
        bi, bj = np.nonzero(dist <= radius)
        keep = start + bi < bj  # global upper triangle only
        rows.append(start + bi[keep])
        cols.append(bj[keep])
    if not rows:
        return np.zeros((0, 2), dtype=np.int64)
    return np.stack(
        (np.concatenate(rows), np.concatenate(cols)), axis=1
    ).astype(np.int64)


def unit_disk_edges(
    points: Sequence[Point], radius: float = DEFAULT_CONFLICT_RADIUS
) -> List[Tuple[int, int]]:
    """Return the edge list of the unit-disk graph over ``points``.

    Edges are returned as ``(i, j)`` index pairs with ``i < j``.  Nodes at
    distance exactly ``radius`` are considered in conflict (closed disk),
    matching the paper's ``||u, v|| <= 2`` convention.  Built on the
    spatial-grid path; see :func:`unit_disk_edge_array` for the array form
    used at scale.
    """
    return [
        (int(i), int(j)) for i, j in unit_disk_edge_array(points, radius=radius)
    ]


def build_unit_disk_graph(
    points: Sequence[Point], radius: float = DEFAULT_CONFLICT_RADIUS
) -> List[Set[int]]:
    """Return the adjacency structure of the unit-disk graph over ``points``.

    The result is a list of neighbour sets indexed by node id; it is the raw
    representation consumed by :class:`repro.graph.conflict_graph.ConflictGraph`.
    """
    n = len(points)
    adjacency: List[Set[int]] = [set() for _ in range(n)]
    for i, j in unit_disk_edge_array(points, radius=radius).tolist():
        adjacency[i].add(j)
        adjacency[j].add(i)
    return adjacency
