"""repro: reproduction of "Almost Optimal Channel Access in Multi-Hop Networks
With Unknown Channel Variables" (Zhou et al., ICDCS 2014).

The package implements the paper's distributed channel-access scheme for
multi-hop cognitive radio networks — a linearly-combinatorial multi-armed
bandit whose per-round decision is a maximum weighted independent set (MWIS)
problem on the extended conflict graph — together with every substrate the
evaluation needs: unit-disk conflict graphs, i.i.d. channel models, exact /
greedy / robust-PTAS MWIS solvers, the distributed robust PTAS protocol with
message-passing simulation, the LLR baseline, regret accounting and the
experiment harness reproducing Figs. 6-8 and Table II.

Quickstart::

    import numpy as np
    from repro import ChannelAccessSystem, ChannelState, connected_random_network

    rng = np.random.default_rng(7)
    graph = connected_random_network(15, 3, rng=rng)
    channels = ChannelState.random_paper_rates(15, 3, rng=rng)
    system = ChannelAccessSystem(graph, channels, seed=7)
    policy = system.paper_policy()
    result = system.simulate(policy, num_rounds=200,
                             optimal_value=system.optimal_value())
    print(result.tracker.practical_regret_trace()[-1])

Or declaratively, through the scenario layer (``repro.spec``)::

    from repro import get_scenario, run_scenario

    result = run_scenario(get_scenario("fig7-quick"))
    print(result.series["practical_regret[Algorithm2]"][-1])
"""

from repro.api import ChannelAccessSystem
from repro.channels import (
    ChannelState,
    GaussianChannel,
    BernoulliChannel,
    UniformChannel,
    ConstantChannel,
    PAPER_RATES_KBPS,
)
from repro.core import (
    CombinatorialUCBPolicy,
    LLRPolicy,
    NaiveStrategyUCBPolicy,
    OraclePolicy,
    RandomPolicy,
    EpsilonGreedyPolicy,
    Strategy,
    WeightEstimator,
    RegretTracker,
)
from repro.distributed import (
    DistributedMWISSolver,
    DistributedRobustPTAS,
    VertexStatus,
)
from repro.graph import (
    ConflictGraph,
    ExtendedConflictGraph,
    connected_random_network,
    random_network,
    linear_network,
    grid_network,
    ring_network,
    star_network,
)
from repro.mwis import (
    ExactMWISSolver,
    GreedyMWISSolver,
    GreedyRatioMWISSolver,
    RobustPTASSolver,
    IndependentSet,
)
from repro.sim import (
    BatchResult,
    BatchSimulator,
    PeriodicSimulator,
    Simulator,
    TimingConfig,
    replication_rngs,
)
from repro.spec import (
    ChannelSpec,
    ExperimentResult,
    PolicySpec,
    ReplicationSpec,
    ScenarioSpec,
    ScheduleSpec,
    SpecError,
    TopologySpec,
    get_scenario,
    list_scenarios,
    register_scenario,
    run_scenario,
)

__version__ = "1.0.0"

__all__ = [
    "ChannelAccessSystem",
    "ChannelState",
    "GaussianChannel",
    "BernoulliChannel",
    "UniformChannel",
    "ConstantChannel",
    "PAPER_RATES_KBPS",
    "CombinatorialUCBPolicy",
    "LLRPolicy",
    "NaiveStrategyUCBPolicy",
    "OraclePolicy",
    "RandomPolicy",
    "EpsilonGreedyPolicy",
    "Strategy",
    "WeightEstimator",
    "RegretTracker",
    "DistributedMWISSolver",
    "DistributedRobustPTAS",
    "VertexStatus",
    "ConflictGraph",
    "ExtendedConflictGraph",
    "connected_random_network",
    "random_network",
    "linear_network",
    "grid_network",
    "ring_network",
    "star_network",
    "ExactMWISSolver",
    "GreedyMWISSolver",
    "GreedyRatioMWISSolver",
    "RobustPTASSolver",
    "IndependentSet",
    "BatchResult",
    "BatchSimulator",
    "replication_rngs",
    "PeriodicSimulator",
    "Simulator",
    "TimingConfig",
    "ScenarioSpec",
    "TopologySpec",
    "ChannelSpec",
    "PolicySpec",
    "ScheduleSpec",
    "ReplicationSpec",
    "SpecError",
    "ExperimentResult",
    "get_scenario",
    "list_scenarios",
    "register_scenario",
    "run_scenario",
    "__version__",
]
