"""Static checker for the repository's markdown documentation.

Docs rot in three ways this module catches mechanically, so the ``docs`` CI
job can gate on them:

* **Dead internal links** — ``[text](path)`` targets that do not exist on
  disk (relative to the linking file), and ``#fragment`` anchors that match
  no heading of the target document (GitHub's heading-slug rules).
* **Unbalanced code fences** — an unclosed ``` fence silently swallows the
  rest of the page on render.
* **Stale command lines** — ``repro run <name>`` / ``repro sweep <name>``
  examples whose scenario or sweep-plan name is no longer registered.

Usage::

    python -m repro.docscheck            # README.md + docs/*.md
    python -m repro.docscheck docs/scaling.md README.md

Exit status 0 when every file is clean, 1 otherwise; one report line per
problem (``path:line: message``).
"""

from __future__ import annotations

import pathlib
import re
import sys
from typing import List, Optional, Sequence, Set

__all__ = ["check_file", "check_paths", "heading_anchor", "main"]

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
_FENCE = re.compile(r"^\s*(```+|~~~+)")
# `repro run <name>` / `python -m repro sweep <name>`; the name group stops
# at whitespace so flags and file arguments are inspected separately.
_COMMAND = re.compile(r"\brepro\s+(run|sweep)\s+([^\s`\"']+)")
_EXTERNAL = re.compile(r"^[a-z][a-z0-9+.-]*:")  # http:, https:, mailto:, ...


def heading_anchor(heading: str) -> str:
    """GitHub-style anchor slug for a markdown heading.

    Lowercase, inline markup and punctuation stripped, spaces to hyphens.
    This intentionally implements the common subset (no dedup counters for
    repeated headings — linking ``#x-1`` to the second ``# x`` is rarer than
    the typos this checker is after).
    """
    text = heading.strip().lower()
    text = re.sub(r"`([^`]*)`", r"\1", text)  # inline code
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links -> text
    text = re.sub(r"[*_]", "", text)  # emphasis markers
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _headings(path: pathlib.Path) -> Set[str]:
    anchors: Set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING.match(line)
        if match:
            anchors.add(heading_anchor(match.group(1)))
    return anchors


def _is_command_name(name: str) -> bool:
    """Heuristic: does this argument look like a preset name to validate?

    Flags, JSON spec files, shell placeholders and substitutions are example
    syntax, not registry names.
    """
    if name.startswith("-") or name.endswith(".json"):
        return False
    if any(ch in name for ch in "<>$*{}/\\"):
        return False
    return True


def _check_command(kind: str, name: str) -> Optional[str]:
    from repro.spec.registry import list_scenarios
    from repro.sweep.presets import list_plans

    scenarios = list_scenarios()
    if kind == "run":
        if name not in scenarios:
            return f"`repro run {name}`: unknown scenario (see `repro list`)"
        return None
    if name not in scenarios and name not in list_plans():
        return (
            f"`repro sweep {name}`: neither a registered scenario nor a "
            "built-in sweep plan"
        )
    return None


def check_file(path: pathlib.Path, root: pathlib.Path) -> List[str]:
    """Return report lines for one markdown file (empty when clean)."""
    problems: List[str] = []
    lines = path.read_text(encoding="utf-8").splitlines()
    in_fence = False
    fence_open_line = 0
    for lineno, line in enumerate(lines, start=1):
        if _FENCE.match(line):
            in_fence = not in_fence
            if in_fence:
                fence_open_line = lineno
            continue

        if in_fence:
            # fenced blocks are the copy-paste surface: validate command
            # names here, and only here (prose may discuss hypothetical or
            # user-registered names).
            for match in _COMMAND.finditer(line):
                kind, name = match.group(1), match.group(2)
                if _is_command_name(name):
                    message = _check_command(kind, name)
                    if message:
                        problems.append(f"{path}:{lineno}: {message}")
            continue
        for match in _LINK.finditer(line):
            target = match.group(1)
            if _EXTERNAL.match(target):
                continue
            target_path, _, fragment = target.partition("#")
            if not target_path:  # same-document anchor
                resolved = path
            else:
                resolved = (path.parent / target_path).resolve()
                try:
                    resolved.relative_to(root.resolve())
                except ValueError:
                    problems.append(
                        f"{path}:{lineno}: link `{target}` escapes the repository"
                    )
                    continue
                if not resolved.exists():
                    problems.append(
                        f"{path}:{lineno}: broken link `{target}` "
                        f"({resolved} does not exist)"
                    )
                    continue
            if fragment and resolved.suffix == ".md":
                if heading_anchor(fragment) not in _headings(resolved):
                    problems.append(
                        f"{path}:{lineno}: anchor `#{fragment}` not found in "
                        f"{resolved.name}"
                    )
    if in_fence:
        problems.append(
            f"{path}:{fence_open_line}: code fence opened here is never closed"
        )
    return problems


def check_paths(
    paths: Sequence[pathlib.Path], root: pathlib.Path
) -> List[str]:
    """Check every file; missing inputs are reported, not raised."""
    problems: List[str] = []
    for path in paths:
        if not path.exists():
            problems.append(f"{path}: file does not exist")
            continue
        problems.extend(check_file(path, root))
    return problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    root = pathlib.Path.cwd()
    if argv:
        paths = [pathlib.Path(arg) for arg in argv]
    else:
        paths = [root / "README.md"] + sorted((root / "docs").glob("*.md"))
    problems = check_paths(paths, root)
    for line in problems:
        print(line)
    if problems:
        print(f"docscheck: {len(problems)} problem(s) in {len(paths)} file(s)")
        return 1
    print(f"docscheck: {len(paths)} file(s) clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
