"""The paper's channel catalogue.

Section V: "We set 8 types of channels with data rates (units kbps) 150, 225,
300, 450, 600, 900, 1200, and 1350 respectively.  Each channel evolves as a
distinct i.i.d Gaussian stochastic process over time."

The catalogue here reproduces those rates and builds Gaussian channel models
around them.  A relative standard deviation is configurable (the paper does
not state the variance; 5% of the mean is the default and the experiments are
insensitive to this choice because all policies see the same draws).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.channels.models import ChannelModel, GaussianChannel

__all__ = [
    "PAPER_RATES_KBPS",
    "DEFAULT_RELATIVE_STD",
    "normalized_paper_rates",
    "paper_channel_models",
    "assign_rates_to_network",
]

#: Data rates of the 8 channel classes used in the paper's simulations (kbps).
PAPER_RATES_KBPS: Sequence[float] = (150.0, 225.0, 300.0, 450.0, 600.0, 900.0, 1200.0, 1350.0)

#: Default relative standard deviation of the Gaussian rate processes.
DEFAULT_RELATIVE_STD = 0.05


def normalized_paper_rates() -> List[float]:
    """The paper's rates scaled into ``[0, 1]`` by the maximum rate.

    The regret analysis assumes rewards in ``[0, 1]``; dividing by the largest
    catalogue rate (1350 kbps) preserves the ordering and relative gaps used
    in the throughput experiments.
    """
    top = max(PAPER_RATES_KBPS)
    return [rate / top for rate in PAPER_RATES_KBPS]


def paper_channel_models(
    relative_std: float = DEFAULT_RELATIVE_STD,
    normalized: bool = False,
) -> List[ChannelModel]:
    """Gaussian channel models for the 8 paper rate classes.

    Parameters
    ----------
    relative_std:
        Standard deviation of each Gaussian expressed as a fraction of its
        mean rate.
    normalized:
        When ``True``, means are scaled into ``[0, 1]``.
    """
    if relative_std < 0:
        raise ValueError(f"relative_std must be non-negative, got {relative_std}")
    rates = normalized_paper_rates() if normalized else list(PAPER_RATES_KBPS)
    return [GaussianChannel(rate, rate * relative_std) for rate in rates]


def assign_rates_to_network(
    num_nodes: int,
    num_channels: int,
    rng: Optional[np.random.Generator] = None,
    rates: Optional[Sequence[float]] = None,
) -> np.ndarray:
    """Draw a per-(node, channel) mean-rate matrix from the rate catalogue.

    The paper lets the same channel show different quality at different
    users; we realise that by sampling, independently for every (node,
    channel) pair, one of the catalogue rates uniformly at random.  Returns an
    ``(num_nodes, num_channels)`` array of mean rates.
    """
    if num_nodes <= 0 or num_channels <= 0:
        raise ValueError(
            f"num_nodes and num_channels must be positive, got {num_nodes}, {num_channels}"
        )
    rng = rng if rng is not None else np.random.default_rng()
    pool = np.asarray(rates if rates is not None else PAPER_RATES_KBPS, dtype=float)
    if pool.size == 0:
        raise ValueError("rate pool must not be empty")
    indices = rng.integers(0, pool.size, size=(num_nodes, num_channels))
    return pool[indices]
