"""Per-network channel state: who sees which quality on which channel.

:class:`ChannelState` stores one :class:`~repro.channels.models.ChannelModel`
per (node, channel) pair and exposes them through the same flat *arm index*
``k = node * M + channel`` used by :class:`repro.graph.extended.ExtendedConflictGraph`
and the learning policies, so a strategy (an independent set of ``H``) can be
"played" directly against the channel state.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.channels.catalog import DEFAULT_RELATIVE_STD, assign_rates_to_network
from repro.channels.models import ChannelModel, GaussianChannel

__all__ = ["ChannelState"]


class ChannelState:
    """The ground-truth channel environment of a simulated network.

    Parameters
    ----------
    models:
        A nested sequence ``models[node][channel]`` of channel models; all
        rows must have the same length ``M``.
    """

    def __init__(self, models: Sequence[Sequence[ChannelModel]]) -> None:
        if not models:
            raise ValueError("models must contain at least one node")
        num_channels = len(models[0])
        if num_channels == 0:
            raise ValueError("each node needs at least one channel model")
        for row in models:
            if len(row) != num_channels:
                raise ValueError("all nodes must have the same number of channels")
        self._models: List[List[ChannelModel]] = [list(row) for row in models]
        self._num_nodes = len(models)
        self._num_channels = num_channels
        self._means = np.array(
            [[model.mean for model in row] for row in self._models], dtype=float
        )
        # Flat arm-indexed state (k = node * M + channel).  When every model
        # is a zero-clipped Gaussian the per-arm std vector enables the
        # vectorized sampling fast path of :meth:`sample_arm_array`.
        self._flat_means = self._means.reshape(-1)
        self._flat_models: List[ChannelModel] = [
            model for row in self._models for model in row
        ]
        params = [model.gaussian_params() for model in self._flat_models]
        if all(p is not None for p in params):
            self._flat_stds: Optional[np.ndarray] = np.array(
                [p[1] for p in params], dtype=float
            )
        else:
            self._flat_stds = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_mean_matrix(
        cls,
        means: np.ndarray,
        relative_std: float = DEFAULT_RELATIVE_STD,
    ) -> "ChannelState":
        """Build Gaussian channels from an ``(N, M)`` matrix of mean rates."""
        means = np.asarray(means, dtype=float)
        if means.ndim != 2:
            raise ValueError(f"means must be a 2-D array, got shape {means.shape}")
        models = [
            [GaussianChannel(float(mu), float(mu) * relative_std) for mu in row]
            for row in means
        ]
        return cls(models)

    @classmethod
    def random_paper_rates(
        cls,
        num_nodes: int,
        num_channels: int,
        rng: Optional[np.random.Generator] = None,
        relative_std: float = DEFAULT_RELATIVE_STD,
    ) -> "ChannelState":
        """Sample a channel state from the paper's 8-rate catalogue.

        Every (node, channel) pair gets a mean drawn uniformly from the
        catalogue and evolves as an independent Gaussian process, matching
        the Section V setup.
        """
        rng = rng if rng is not None else np.random.default_rng()
        means = assign_rates_to_network(num_nodes, num_channels, rng=rng)
        return cls.from_mean_matrix(means, relative_std=relative_std)

    # ------------------------------------------------------------------
    # Shape / mean accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of users ``N``."""
        return self._num_nodes

    @property
    def num_channels(self) -> int:
        """Number of channels ``M``."""
        return self._num_channels

    @property
    def num_arms(self) -> int:
        """Number of arms ``K = N * M``."""
        return self._num_nodes * self._num_channels

    @property
    def has_stateful_models(self) -> bool:
        """``True`` when any model mutates internal state on sampling.

        Stateful models (Gilbert-Elliott, adversarial sequences) cannot be
        shared between independent replications.
        """
        return any(model.stateful for model in self._flat_models)

    def mean(self, node: int, channel: int) -> float:
        """True mean quality ``mu_{node, channel}``."""
        self._check(node, channel)
        return float(self._means[node, channel])

    def mean_matrix(self) -> np.ndarray:
        """Copy of the ``(N, M)`` true-mean matrix."""
        return self._means.copy()

    def mean_vector(self) -> np.ndarray:
        """True means flattened to the arm index ``k = node * M + channel``."""
        return self._means.reshape(-1).copy()

    def model(self, node: int, channel: int) -> ChannelModel:
        """The underlying channel model of a (node, channel) pair."""
        self._check(node, channel)
        return self._models[node][channel]

    def arm_index(self, node: int, channel: int) -> int:
        """Flat arm index of a (node, channel) pair."""
        self._check(node, channel)
        return node * self._num_channels + channel

    def arm_to_pair(self, arm: int) -> tuple:
        """Inverse of :meth:`arm_index`."""
        if not (0 <= arm < self.num_arms):
            raise ValueError(f"arm {arm} out of range [0, {self.num_arms})")
        return divmod(arm, self._num_channels)

    def _check(self, node: int, channel: int) -> None:
        if not (0 <= node < self._num_nodes):
            raise ValueError(f"node {node} out of range [0, {self._num_nodes})")
        if not (0 <= channel < self._num_channels):
            raise ValueError(
                f"channel {channel} out of range [0, {self._num_channels})"
            )

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(self, node: int, channel: int, rng: np.random.Generator) -> float:
        """Draw one observation of channel ``channel`` at node ``node``."""
        self._check(node, channel)
        return float(self._models[node][channel].sample(rng))

    def sample_arm_array(
        self, arms: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw one observation per flat arm index, as an array.

        This is the vectorized fast path used by the simulators: when every
        model is a zero-clipped Gaussian the whole strategy is sampled with a
        single ``rng.normal`` call.  The fast path consumes the generator
        stream exactly like per-arm scalar draws in the same order, so dict
        and array sampling agree bit for bit from the same generator state.
        """
        arms = np.asarray(arms, dtype=np.int64)
        if arms.ndim != 1:
            raise ValueError(f"arms must be a 1-D array, got shape {arms.shape}")
        if arms.size == 0:
            return np.empty(0, dtype=float)
        if arms.min() < 0 or arms.max() >= self.num_arms:
            raise ValueError(
                f"arm indices must lie in [0, {self.num_arms}), got {arms}"
            )
        if self._flat_stds is not None:
            draws = rng.normal(self._flat_means[arms], self._flat_stds[arms])
            return np.clip(draws, 0.0, None)
        return np.array(
            [self._flat_models[arm].sample(rng) for arm in arms], dtype=float
        )

    def sample_assignment(
        self, assignment: Mapping[int, int], rng: np.random.Generator
    ) -> Dict[int, float]:
        """Draw observations for a ``{node: channel}`` strategy.

        Returns a ``{node: observed_rate}`` map; only nodes present in the
        assignment transmit and observe anything.
        """
        nodes = list(assignment)
        arms = np.array(
            [self.arm_index(node, assignment[node]) for node in nodes],
            dtype=np.int64,
        )
        values = self.sample_arm_array(arms, rng)
        return {node: float(value) for node, value in zip(nodes, values)}

    def sample_arms(
        self, arms: Iterable[int], rng: np.random.Generator
    ) -> Dict[int, float]:
        """Draw observations for a set of flat arm indices (dict API)."""
        arm_list = [int(arm) for arm in arms]
        for arm in arm_list:
            if not (0 <= arm < self.num_arms):
                raise ValueError(f"arm {arm} out of range [0, {self.num_arms})")
        values = self.sample_arm_array(np.array(arm_list, dtype=np.int64), rng)
        return {arm: float(value) for arm, value in zip(arm_list, values)}

    def expected_reward_arms(self, arms: np.ndarray) -> float:
        """Expected throughput of a set of arms (vectorized gather)."""
        arms = np.asarray(arms, dtype=np.int64)
        return float(self._flat_means[arms].sum())

    def expected_reward(self, assignment: Mapping[int, int]) -> float:
        """Expected per-round throughput of a strategy (sum of true means)."""
        return float(
            sum(self.mean(node, channel) for node, channel in assignment.items())
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"ChannelState(N={self._num_nodes}, M={self._num_channels}, "
            f"mean_range=[{self._means.min():.3g}, {self._means.max():.3g}])"
        )
