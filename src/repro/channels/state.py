"""Per-network channel state: who sees which quality on which channel.

:class:`ChannelState` stores one :class:`~repro.channels.models.ChannelModel`
per (node, channel) pair and exposes them through the same flat *arm index*
``k = node * M + channel`` used by :class:`repro.graph.extended.ExtendedConflictGraph`
and the learning policies, so a strategy (an independent set of ``H``) can be
"played" directly against the channel state.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.channels.catalog import DEFAULT_RELATIVE_STD, assign_rates_to_network
from repro.channels.models import ChannelModel, GaussianChannel

__all__ = ["ChannelState"]


class ChannelState:
    """The ground-truth channel environment of a simulated network.

    Parameters
    ----------
    models:
        A nested sequence ``models[node][channel]`` of channel models; all
        rows must have the same length ``M``.
    """

    def __init__(self, models: Sequence[Sequence[ChannelModel]]) -> None:
        if not models:
            raise ValueError("models must contain at least one node")
        num_channels = len(models[0])
        if num_channels == 0:
            raise ValueError("each node needs at least one channel model")
        for row in models:
            if len(row) != num_channels:
                raise ValueError("all nodes must have the same number of channels")
        self._models: List[List[ChannelModel]] = [list(row) for row in models]
        self._num_nodes = len(models)
        self._num_channels = num_channels
        self._means = np.array(
            [[model.mean for model in row] for row in self._models], dtype=float
        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_mean_matrix(
        cls,
        means: np.ndarray,
        relative_std: float = DEFAULT_RELATIVE_STD,
    ) -> "ChannelState":
        """Build Gaussian channels from an ``(N, M)`` matrix of mean rates."""
        means = np.asarray(means, dtype=float)
        if means.ndim != 2:
            raise ValueError(f"means must be a 2-D array, got shape {means.shape}")
        models = [
            [GaussianChannel(float(mu), float(mu) * relative_std) for mu in row]
            for row in means
        ]
        return cls(models)

    @classmethod
    def random_paper_rates(
        cls,
        num_nodes: int,
        num_channels: int,
        rng: Optional[np.random.Generator] = None,
        relative_std: float = DEFAULT_RELATIVE_STD,
    ) -> "ChannelState":
        """Sample a channel state from the paper's 8-rate catalogue.

        Every (node, channel) pair gets a mean drawn uniformly from the
        catalogue and evolves as an independent Gaussian process, matching
        the Section V setup.
        """
        rng = rng if rng is not None else np.random.default_rng()
        means = assign_rates_to_network(num_nodes, num_channels, rng=rng)
        return cls.from_mean_matrix(means, relative_std=relative_std)

    # ------------------------------------------------------------------
    # Shape / mean accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of users ``N``."""
        return self._num_nodes

    @property
    def num_channels(self) -> int:
        """Number of channels ``M``."""
        return self._num_channels

    @property
    def num_arms(self) -> int:
        """Number of arms ``K = N * M``."""
        return self._num_nodes * self._num_channels

    def mean(self, node: int, channel: int) -> float:
        """True mean quality ``mu_{node, channel}``."""
        self._check(node, channel)
        return float(self._means[node, channel])

    def mean_matrix(self) -> np.ndarray:
        """Copy of the ``(N, M)`` true-mean matrix."""
        return self._means.copy()

    def mean_vector(self) -> np.ndarray:
        """True means flattened to the arm index ``k = node * M + channel``."""
        return self._means.reshape(-1).copy()

    def model(self, node: int, channel: int) -> ChannelModel:
        """The underlying channel model of a (node, channel) pair."""
        self._check(node, channel)
        return self._models[node][channel]

    def arm_index(self, node: int, channel: int) -> int:
        """Flat arm index of a (node, channel) pair."""
        self._check(node, channel)
        return node * self._num_channels + channel

    def arm_to_pair(self, arm: int) -> tuple:
        """Inverse of :meth:`arm_index`."""
        if not (0 <= arm < self.num_arms):
            raise ValueError(f"arm {arm} out of range [0, {self.num_arms})")
        return divmod(arm, self._num_channels)

    def _check(self, node: int, channel: int) -> None:
        if not (0 <= node < self._num_nodes):
            raise ValueError(f"node {node} out of range [0, {self._num_nodes})")
        if not (0 <= channel < self._num_channels):
            raise ValueError(
                f"channel {channel} out of range [0, {self._num_channels})"
            )

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(self, node: int, channel: int, rng: np.random.Generator) -> float:
        """Draw one observation of channel ``channel`` at node ``node``."""
        self._check(node, channel)
        return float(self._models[node][channel].sample(rng))

    def sample_assignment(
        self, assignment: Mapping[int, int], rng: np.random.Generator
    ) -> Dict[int, float]:
        """Draw observations for a ``{node: channel}`` strategy.

        Returns a ``{node: observed_rate}`` map; only nodes present in the
        assignment transmit and observe anything.
        """
        return {
            node: self.sample(node, channel, rng)
            for node, channel in assignment.items()
        }

    def sample_arms(
        self, arms: Iterable[int], rng: np.random.Generator
    ) -> Dict[int, float]:
        """Draw observations for a set of flat arm indices."""
        observations: Dict[int, float] = {}
        for arm in arms:
            node, channel = self.arm_to_pair(arm)
            observations[arm] = self.sample(node, channel, rng)
        return observations

    def expected_reward(self, assignment: Mapping[int, int]) -> float:
        """Expected per-round throughput of a strategy (sum of true means)."""
        return float(
            sum(self.mean(node, channel) for node, channel in assignment.items())
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"ChannelState(N={self._num_nodes}, M={self._num_channels}, "
            f"mean_range=[{self._means.min():.3g}, {self._means.max():.3g}])"
        )
