"""Channel quality models.

Every model represents an i.i.d. process over rounds with a fixed mean; the
learning policies never see the model, only the samples observed after a
transmission.  Means can be expressed in any unit (the paper uses kbps for
the throughput experiments and values in ``[0, 1]`` for the analysis); the
:mod:`repro.channels.catalog` module provides the normalisation helpers.
"""

from __future__ import annotations

import abc
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "ChannelModel",
    "GaussianChannel",
    "TruncatedGaussianChannel",
    "BernoulliChannel",
    "UniformChannel",
    "ConstantChannel",
]


class ChannelModel(abc.ABC):
    """Abstract i.i.d. channel-quality process with a known mean.

    Subclasses implement :meth:`sample`, drawing one observation per call
    using the supplied random generator, so that simulations are reproducible
    from a single seed.
    """

    #: Whether :meth:`sample` mutates internal model state.  Stateful models
    #: (e.g. the Gilbert-Elliott extension) cannot be shared between
    #: independent replications; :class:`~repro.sim.batch.BatchSimulator`
    #: refuses them for ``replications > 1``.
    stateful: bool = False

    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """The true mean of the process (unknown to the learners)."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        """Draw one observation (or ``size`` observations) of the process."""

    def gaussian_params(self) -> Optional[Tuple[float, float]]:
        """``(mean, std)`` when the model is a zero-clipped Gaussian.

        :class:`~repro.channels.state.ChannelState` uses this to build its
        flat-arm fast path: when every model of a network reports parameters,
        a whole strategy can be sampled with one vectorized ``rng.normal``
        call that consumes the generator stream exactly like per-model scalar
        draws would.  Models with a different law return ``None`` (the
        default) and fall back to per-arm sampling.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"{type(self).__name__}(mean={self.mean:.4g})"


class GaussianChannel(ChannelModel):
    """Gaussian data-rate process, the model used in the paper's Section V.

    Negative draws are clipped at zero because a data rate cannot be negative;
    with the small relative standard deviations used in the experiments the
    clipping has negligible effect on the mean.
    """

    def __init__(self, mean: float, std: float) -> None:
        if mean < 0:
            raise ValueError(f"mean must be non-negative, got {mean}")
        if std < 0:
            raise ValueError(f"std must be non-negative, got {std}")
        self._mean = float(mean)
        self._std = float(std)

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def std(self) -> float:
        """Standard deviation of the underlying Gaussian."""
        return self._std

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        draws = rng.normal(self._mean, self._std, size=size)
        return np.clip(draws, 0.0, None) if size is not None else max(float(draws), 0.0)

    def gaussian_params(self) -> Tuple[float, float]:
        return (self._mean, self._std)


class TruncatedGaussianChannel(ChannelModel):
    """Gaussian process truncated (by clipping) to a ``[low, high]`` interval.

    Useful when rewards must stay inside ``[0, 1]`` as assumed by the regret
    bounds of Theorem 1.  Note the reported :attr:`mean` is the mean of the
    *untruncated* Gaussian; with symmetric clipping margins the bias is
    negligible for the std values used in the experiments.
    """

    def __init__(self, mean: float, std: float, low: float = 0.0, high: float = 1.0) -> None:
        if std < 0:
            raise ValueError(f"std must be non-negative, got {std}")
        if low >= high:
            raise ValueError(f"low must be < high, got [{low}, {high}]")
        if not (low <= mean <= high):
            raise ValueError(f"mean {mean} outside [{low}, {high}]")
        self._mean = float(mean)
        self._std = float(std)
        self._low = float(low)
        self._high = float(high)

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def bounds(self) -> tuple:
        """The ``(low, high)`` clipping interval."""
        return (self._low, self._high)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        draws = rng.normal(self._mean, self._std, size=size)
        clipped = np.clip(draws, self._low, self._high)
        return clipped if size is not None else float(clipped)


class BernoulliChannel(ChannelModel):
    """Bernoulli channel: the channel is either fully available or not.

    This is the classical model of the single-hop opportunistic-access
    literature the paper builds on; we provide it for the property-based
    tests and the regret-bound sanity checks where rewards in ``{0, 1}``
    make the analysis exact.
    """

    def __init__(self, mean: float) -> None:
        if not (0.0 <= mean <= 1.0):
            raise ValueError(f"Bernoulli mean must be in [0, 1], got {mean}")
        self._mean = float(mean)

    @property
    def mean(self) -> float:
        return self._mean

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        draws = rng.binomial(1, self._mean, size=size)
        return draws.astype(float) if size is not None else float(draws)


class UniformChannel(ChannelModel):
    """Uniform channel quality on ``[low, high]``."""

    def __init__(self, low: float, high: float) -> None:
        if low > high:
            raise ValueError(f"low must be <= high, got [{low}, {high}]")
        self._low = float(low)
        self._high = float(high)

    @property
    def mean(self) -> float:
        return 0.5 * (self._low + self._high)

    @property
    def bounds(self) -> tuple:
        """The ``(low, high)`` support of the uniform distribution."""
        return (self._low, self._high)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        draws = rng.uniform(self._low, self._high, size=size)
        return draws if size is not None else float(draws)


class ConstantChannel(ChannelModel):
    """Deterministic channel, convenient for unit tests and oracles."""

    def __init__(self, value: float) -> None:
        self._value = float(value)

    @property
    def mean(self) -> float:
        return self._value

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        if size is None:
            return self._value
        return np.full(size, self._value, dtype=float)
