"""Channel substrate: i.i.d. stochastic channel-quality processes.

Section II of the paper models channel ``c_j`` at node ``v_i`` as an i.i.d.
stochastic process ``xi_{i,j}(t)`` with an unknown mean ``mu_{i,j} in [0, 1]``.
Section V instantiates 8 channel classes with data rates 150..1350 kbps, each
evolving as a distinct i.i.d. Gaussian process.

This subpackage provides the channel models, the paper's rate catalogue and
the :class:`ChannelState` container that holds the per-(node, channel) mean
matrix and draws rewards round by round.
"""

from repro.channels.models import (
    ChannelModel,
    GaussianChannel,
    TruncatedGaussianChannel,
    BernoulliChannel,
    UniformChannel,
    ConstantChannel,
)
from repro.channels.catalog import (
    PAPER_RATES_KBPS,
    normalized_paper_rates,
    paper_channel_models,
)
from repro.channels.dynamics import AdversarialChannel, GilbertElliottChannel
from repro.channels.state import ChannelState

__all__ = [
    "ChannelModel",
    "GaussianChannel",
    "TruncatedGaussianChannel",
    "BernoulliChannel",
    "UniformChannel",
    "ConstantChannel",
    "GilbertElliottChannel",
    "AdversarialChannel",
    "PAPER_RATES_KBPS",
    "normalized_paper_rates",
    "paper_channel_models",
    "ChannelState",
]
