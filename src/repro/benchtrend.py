"""Benchmark trajectory tooling: normalize, record, and gate benchmark runs.

CI runs ``pytest benchmarks --benchmark-json`` and pipes the raw
pytest-benchmark payload through this module::

    python -m repro.benchtrend normalize --input raw.json \
        --output BENCH_<sha>.json --sha <sha>
    python -m repro.benchtrend check --baseline benchmarks/baseline.json \
        --current BENCH_<sha>.json --max-ratio 2.0 --group solvers --group policies

``normalize`` distills the raw payload into the stable ``repro.bench-trend/v1``
schema (documented in ``docs/benchmarks.md``): one compact record per
benchmark with its group, mean/median/stddev seconds and round count, plus
enough machine context to interpret cross-machine comparisons.  The
``BENCH_<sha>.json`` files are the project's recorded performance
trajectory — one per commit, uploaded as a CI artifact.

``check`` compares a current trajectory file against the committed baseline
and exits non-zero when any benchmark in the gated groups slowed down by
more than ``--max-ratio`` (the regression gate).  Benchmarks are grouped by
their source file: ``benchmarks/test_bench_solvers.py`` -> group
``solvers``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import re
import sys
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "BENCH_SCHEMA",
    "benchmark_group",
    "normalize",
    "check",
    "main",
]

#: Schema identifier of every ``BENCH_<sha>.json`` trajectory file.
BENCH_SCHEMA = "repro.bench-trend/v1"

_GROUP_PATTERN = re.compile(r"test_bench_([a-z0-9_]+)\.py", re.IGNORECASE)


class BenchTrendError(ValueError):
    """A trajectory payload is malformed or the gate configuration is bad."""


def benchmark_group(fullname: str) -> str:
    """Group of a benchmark, derived from its source file name.

    ``benchmarks/test_bench_solvers.py::test_exact_solver`` -> ``solvers``.
    Files outside the naming convention fall into ``misc``.
    """
    match = _GROUP_PATTERN.search(fullname)
    return match.group(1) if match else "misc"


def normalize(raw: Dict, sha: str) -> Dict:
    """Distill a raw pytest-benchmark payload into the BENCH schema."""
    if not isinstance(raw, dict) or "benchmarks" not in raw:
        raise BenchTrendError(
            "input is not a pytest-benchmark payload (missing 'benchmarks')"
        )
    records = []
    for bench in raw["benchmarks"]:
        stats = bench.get("stats", {})
        fullname = bench.get("fullname", bench.get("name", "?"))
        records.append(
            {
                "name": bench.get("name", fullname),
                "fullname": fullname,
                "group": benchmark_group(fullname),
                "mean_s": float(stats.get("mean", 0.0)),
                "median_s": float(stats.get("median", 0.0)),
                "stddev_s": float(stats.get("stddev", 0.0)),
                "rounds": int(stats.get("rounds", 0)),
            }
        )
    records.sort(key=lambda record: record["fullname"])
    machine = raw.get("machine_info", {}) or {}
    return {
        "schema": BENCH_SCHEMA,
        "sha": sha,
        "machine": {
            "python": machine.get("python_version", platform.python_version()),
            "system": machine.get("system", platform.system()),
            "processor": machine.get("processor", platform.processor()),
        },
        "benchmarks": records,
    }


def _load_trend(path: pathlib.Path) -> Dict:
    try:
        data = json.loads(path.read_text())
    except FileNotFoundError:
        raise BenchTrendError(f"trajectory file {path} does not exist") from None
    except json.JSONDecodeError as err:
        raise BenchTrendError(f"trajectory file {path} is not valid JSON: {err}") from None
    if data.get("schema") != BENCH_SCHEMA:
        raise BenchTrendError(
            f"trajectory file {path}: expected schema {BENCH_SCHEMA!r}, "
            f"got {data.get('schema')!r}"
        )
    return data


def check(
    baseline: Dict,
    current: Dict,
    max_ratio: float,
    groups: Optional[Sequence[str]] = None,
) -> Tuple[bool, List[str]]:
    """Gate ``current`` against ``baseline``.

    Returns ``(ok, report_lines)``.  A benchmark fails the gate when it
    slowed down by more than ``max_ratio`` versus the baseline; only
    benchmarks whose group is in ``groups`` are gated (all when ``groups``
    is falsy).  The compared statistic is the **median** (falling back to
    the mean when a median is absent): microbenchmark means on shared CI
    runners are dominated by scheduling-noise outliers, and the median
    absorbs them while still moving by integer factors on real
    regressions.  Benchmarks present in the baseline but missing from the
    current run are reported as warnings, not failures, so retired
    benchmarks do not wedge CI — refresh the baseline to silence them.
    """
    if max_ratio <= 1.0:
        raise BenchTrendError(
            f"--max-ratio must be > 1.0 (a slowdown factor), got {max_ratio}"
        )
    gated = set(groups) if groups else None
    current_by_name = {
        record["fullname"]: record for record in current["benchmarks"]
    }
    lines: List[str] = []
    ok = True
    compared = 0
    for record in baseline["benchmarks"]:
        if gated is not None and record["group"] not in gated:
            continue
        name = record["fullname"]
        now = current_by_name.get(name)
        if now is None:
            lines.append(f"WARN  {name}: in baseline but missing from current run")
            continue
        base_value = record.get("median_s") or record["mean_s"]
        if base_value <= 0:
            lines.append(f"WARN  {name}: baseline timing is {base_value}; skipped")
            continue
        compared += 1
        now_value = now.get("median_s") or now["mean_s"]
        ratio = now_value / base_value
        verdict = "FAIL" if ratio > max_ratio else "ok"
        if ratio > max_ratio:
            ok = False
        lines.append(
            f"{verdict:<5} {name}: median {base_value * 1e3:.3f}ms -> "
            f"{now_value * 1e3:.3f}ms ({ratio:.2f}x, limit {max_ratio:.1f}x)"
        )
    if compared == 0:
        ok = False
        lines.append(
            "FAIL  no benchmarks compared — gated groups "
            f"{sorted(gated) if gated else '<all>'} matched nothing in the baseline"
        )
    return ok, lines


def _cmd_normalize(args) -> int:
    try:
        raw = json.loads(pathlib.Path(args.input).read_text())
        payload = normalize(raw, sha=args.sha)
    except (OSError, json.JSONDecodeError, BenchTrendError) as err:
        print(f"benchtrend: {err}", file=sys.stderr)
        return 1
    pathlib.Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"wrote {args.output}: {len(payload['benchmarks'])} benchmark(s) "
        f"at sha {args.sha}"
    )
    return 0


def _cmd_check(args) -> int:
    try:
        baseline = _load_trend(pathlib.Path(args.baseline))
        current = _load_trend(pathlib.Path(args.current))
        ok, lines = check(
            baseline, current, max_ratio=args.max_ratio, groups=args.groups
        )
    except BenchTrendError as err:
        print(f"benchtrend: {err}", file=sys.stderr)
        return 1
    print("\n".join(lines))
    if not ok:
        print(
            f"benchtrend: regression gate failed (>{args.max_ratio:.1f}x "
            "slowdown vs benchmarks/baseline.json); if the slowdown is "
            "intended, refresh the baseline in the same PR",
            file=sys.stderr,
        )
        return 1
    print("benchtrend: gate passed")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.benchtrend`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro.benchtrend",
        description="Normalize and gate pytest-benchmark trajectories "
        "(schema: repro.bench-trend/v1, see docs/benchmarks.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    norm = sub.add_parser(
        "normalize", help="raw pytest-benchmark JSON -> BENCH_<sha>.json"
    )
    norm.add_argument("--input", required=True, help="raw pytest-benchmark JSON")
    norm.add_argument("--output", required=True, help="BENCH_<sha>.json to write")
    norm.add_argument("--sha", required=True, help="commit sha to stamp")

    gate = sub.add_parser(
        "check", help="fail when gated benchmarks slowed past --max-ratio"
    )
    gate.add_argument("--baseline", required=True, help="committed baseline file")
    gate.add_argument("--current", required=True, help="current BENCH_<sha>.json")
    gate.add_argument(
        "--max-ratio",
        type=float,
        default=2.0,
        help="maximum tolerated mean slowdown factor (default: 2.0)",
    )
    gate.add_argument(
        "--group",
        action="append",
        default=[],
        dest="groups",
        help="gate only this benchmark group (repeatable; default: all)",
    )

    args = parser.parse_args(list(argv) if argv is not None else None)
    if args.command == "normalize":
        return _cmd_normalize(args)
    return _cmd_check(args)


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
