"""Command-line entry point for the experiment harness.

The primary interface is the declarative scenario API::

    python -m repro list                          # registered scenarios
    python -m repro show fig7-quick               # print a scenario's JSON spec
    python -m repro run fig7-quick                # run a registered scenario
    python -m repro run fig8-quick --set schedule.periods=[1,5] \
                                   --set replication.replications=4
    python -m repro run my-scenario.json --json out.json

``run`` accepts either a registered scenario name or a path to a JSON spec
file, applies ``--set key=value`` dotted-path overrides, and can export the
uniform result envelope (``repro.scenario-result/v1``) with ``--json``
(``--json -`` prints the JSON instead of the text report).

Multi-point studies go through the sweep engine (see ``docs/sweeps.md``)::

    python -m repro sweep fig7-smoke --grid replication.replications=1,2 \
                                     --backend process --jobs 4
    python -m repro sweep fig6-paper-sweep        # built-in paper grid
    python -m repro sweep --summarize             # what the store holds
    python -m repro sweep --list-plans

``sweep`` expands the grid into spec points, runs (point x replication)
work units on the chosen backend, and serves every already-computed unit
from the content-addressed store in ``--store`` (default ``.repro-store``),
so re-running a sweep is free and interrupted sweeps resume.

The same store backs the results service (see ``docs/serving.md``)::

    python -m repro serve --store .repro-store --jobs 4   # long-running server
    python -m repro submit fig6-smoke --wait --json -     # client submission
    python -m repro store verify --heal                   # offline CAS audit

``serve`` answers ``POST /v1/run`` / ``/v1/sweep`` from the warm store
(bit-identical to ``run``/``sweep`` envelopes), coalesces concurrent
identical submissions, and enforces per-client quotas; ``submit`` is the
matching client; ``store verify`` re-hashes and validates every stored
object, pruning damage with ``--heal``.

The legacy sub-commands remain as aliases that build specs internally::

    python -m repro fig6 [--paper]
    python -m repro fig7 [--paper] [--rounds N] [--replications R] [--jobs J]
    python -m repro fig8 [--paper] [--periods 1,5,10,20] [--updates N] \
                         [--replications R] [--jobs J]
    python -m repro table2
    python -m repro complexity [--paper]

Every legacy sub-command prints the same text tables/series as the
corresponding ``examples/`` script; ``--paper`` switches from the fast
scaled-down configuration to the exact Section V parameters (``complexity``
now follows the same convention — it used to run paper scale only).
"""

from __future__ import annotations

import argparse
import json
import logging
import pathlib
import sys
from typing import Optional, Sequence

from repro.experiments import (
    ComplexityConfig,
    Fig6Config,
    Fig7Config,
    Fig8Config,
    format_complexity,
    format_fig6,
    format_fig7,
    format_fig8,
    format_table2,
    run_complexity,
    run_fig6,
    run_fig7,
    run_fig8,
)
from repro.obs import (
    TraceError,
    TracingObserver,
    summarize_trace_file,
    use_observer,
    write_trace,
)
from repro.sim.backends import BACKEND_NAMES
from repro.spec import (
    ScenarioSpec,
    SpecError,
    apply_overrides,
    default_registry,
    format_result,
    get_scenario,
    parse_set_items,
    run_scenario,
)

__all__ = ["main", "build_parser"]

#: Diagnostics logger; everything goes to stderr so stdout stays reserved
#: for reports and machine-readable JSON (``--json -`` piping stays clean).
_LOG = logging.getLogger("repro")

_LOG_LEVELS = ("debug", "info", "warning", "error")


def _logging_parent() -> argparse.ArgumentParser:
    """Shared ``--log-level`` flag, attached to every sub-command.

    An argparse *parent* parser is the only way a flag can legally appear
    after the sub-command name (``repro run fig6-smoke --log-level info``).
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--log-level",
        choices=_LOG_LEVELS,
        default="warning",
        help="stderr diagnostics verbosity (default: warning)",
    )
    return parent


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the evaluation of 'Almost Optimal Channel Access "
        "in Multi-Hop Networks With Unknown Channel Variables' (ICDCS 2014).",
    )
    logging_parent = _logging_parent()
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser(
        "run",
        parents=[logging_parent],
        help="run a registered scenario (or a JSON spec file)",
    )
    run.add_argument(
        "scenario",
        help="registered scenario name (see `repro list`) or path to a "
        "JSON spec file",
    )
    run.add_argument(
        "--set",
        action="append",
        default=[],
        dest="overrides",
        metavar="KEY=VALUE",
        help="override a spec field by dotted path "
        "(e.g. --set schedule.num_rounds=200 --set policies.0.r=1)",
    )
    run.add_argument("--seed", type=int, default=None, help="override the scenario seed")
    run.add_argument(
        "--json",
        dest="json_path",
        default=None,
        metavar="PATH",
        help="write the result envelope as JSON to PATH ('-' prints JSON "
        "instead of the text report)",
    )
    run.add_argument(
        "--trace",
        dest="trace_path",
        default=None,
        metavar="PATH",
        help="record a repro.trace/v1 JSONL span/metrics trace of the run "
        "to PATH (inspect with `repro trace summarize PATH`)",
    )

    sweep = subparsers.add_parser(
        "sweep",
        parents=[logging_parent],
        help="run a parameter sweep (grid of scenarios) with a cached "
        "results store",
    )
    sweep.add_argument(
        "target",
        nargs="?",
        default=None,
        help="built-in sweep plan name (see --list-plans), registered "
        "scenario name, or path to a JSON spec file",
    )
    sweep.add_argument(
        "--grid",
        action="append",
        default=[],
        dest="grid",
        metavar="PATH=V1,V2,...",
        help="sweep a spec field over values by dotted path (repeatable; "
        "e.g. --grid topology.num_vertices=10,20,40)",
    )
    sweep.add_argument(
        "--set",
        action="append",
        default=[],
        dest="overrides",
        metavar="KEY=VALUE",
        help="override a base-spec field before the grid is applied",
    )
    sweep.add_argument("--seed", type=int, default=None, help="override the base seed")
    sweep.add_argument(
        "--backend",
        choices=list(BACKEND_NAMES),
        default="serial",
        help="execution backend for the work units (process = true multicore)",
    )
    sweep.add_argument(
        "--jobs", type=int, default=1, help="worker count for the chosen backend"
    )
    sweep.add_argument(
        "--store",
        default=".repro-store",
        metavar="DIR",
        help="content-addressed results store directory (default: .repro-store)",
    )
    sweep.add_argument(
        "--no-store",
        action="store_true",
        help="run without persistence (every unit recomputes)",
    )
    sweep.add_argument(
        "--json",
        dest="json_path",
        default=None,
        metavar="PATH",
        help="write the sweep envelope (repro.sweep-result/v1) to PATH "
        "('-' prints JSON instead of the text report)",
    )
    sweep.add_argument(
        "--stats-json",
        dest="stats_json_path",
        default=None,
        metavar="PATH",
        help="write machine-readable run statistics (computed/cached unit "
        "counts) to PATH",
    )
    sweep.add_argument(
        "--trace",
        dest="trace_path",
        default=None,
        metavar="PATH",
        help="record a repro.trace/v1 JSONL span/metrics trace of the sweep "
        "to PATH (inspect with `repro trace summarize PATH`)",
    )
    sweep.add_argument(
        "--summarize",
        action="store_true",
        help="without a target: summarize the store contents; with a "
        "target: show the plan's cache status without running anything",
    )
    sweep.add_argument(
        "--list-plans",
        action="store_true",
        help="list the built-in sweep plans and exit",
    )

    trace = subparsers.add_parser(
        "trace", help="inspect recorded repro.trace/v1 traces"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_summarize = trace_sub.add_parser(
        "summarize",
        parents=[logging_parent],
        help="aggregate a trace file into span/counter/histogram tables",
    )
    trace_summarize.add_argument(
        "trace_file", help="path to a repro.trace/v1 JSONL file"
    )

    list_cmd = subparsers.add_parser(
        "list", parents=[logging_parent], help="list the registered scenarios"
    )
    list_cmd.add_argument(
        "--mode",
        choices=("per-round", "periodic", "protocol", "dynamic"),
        default=None,
        help="only show scenarios of one schedule mode ('dynamic' selects "
        "per-round scenarios with topology dynamics attached)",
    )

    show = subparsers.add_parser(
        "show", parents=[logging_parent], help="print a scenario's JSON spec"
    )
    show.add_argument("scenario", help="registered scenario name")

    fig6 = subparsers.add_parser(
        "fig6",
        parents=[logging_parent],
        help="Fig. 6: strategy-decision convergence",
    )
    fig6.add_argument("--paper", action="store_true", help="use the paper-scale networks")
    fig6.add_argument("--seed", type=int, default=None, help="override the random seed")

    fig7 = subparsers.add_parser(
        "fig7", parents=[logging_parent], help="Fig. 7: practical regret vs. LLR"
    )
    fig7.add_argument("--paper", action="store_true", help="use the paper-scale network")
    fig7.add_argument("--rounds", type=int, default=None, help="number of time slots")
    fig7.add_argument("--seed", type=int, default=None, help="override the random seed")
    _add_replication_arguments(fig7)

    fig8 = subparsers.add_parser(
        "fig8", parents=[logging_parent], help="Fig. 8: periodic-update throughput"
    )
    fig8.add_argument("--paper", action="store_true", help="use the paper-scale network")
    fig8.add_argument(
        "--periods", type=str, default=None, help="comma-separated update periods"
    )
    fig8.add_argument("--updates", type=int, default=None, help="updates per period length")
    fig8.add_argument("--seed", type=int, default=None, help="override the random seed")
    _add_replication_arguments(fig8)

    subparsers.add_parser(
        "table2",
        parents=[logging_parent],
        help="Table II: round timing parameters",
    )

    complexity = subparsers.add_parser(
        "complexity",
        parents=[logging_parent],
        help="Section IV-C complexity measurements",
    )
    complexity.add_argument(
        "--paper", action="store_true", help="use the paper-scale networks"
    )
    complexity.add_argument("--seed", type=int, default=None, help="override the random seed")

    serve = subparsers.add_parser(
        "serve",
        parents=[logging_parent],
        help="serve cached scenario/sweep results over HTTP (see docs/serving.md)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    serve.add_argument(
        "--port",
        type=int,
        default=8737,
        help="bind port (default: 8737; 0 picks an ephemeral port)",
    )
    serve.add_argument(
        "--store",
        default=".repro-store",
        metavar="DIR",
        help="content-addressed results store directory (default: .repro-store)",
    )
    serve.add_argument(
        "--backend",
        choices=("serial", "thread", "process"),
        default="process",
        help="worker pool executing cache misses (default: process)",
    )
    serve.add_argument(
        "--jobs", type=int, default=2, help="worker pool size (default: 2)"
    )
    serve.add_argument(
        "--max-inflight-jobs",
        type=int,
        default=8,
        help="per-client cap on simultaneously computing jobs (0 disables)",
    )
    serve.add_argument(
        "--units-per-minute",
        type=int,
        default=3000,
        help="per-client computed-unit budget per minute (0 disables)",
    )
    serve.add_argument(
        "--trace",
        dest="trace_path",
        default=None,
        metavar="PATH",
        help="record a repro.trace/v1 trace of the server's spans/metrics "
        "to PATH on shutdown",
    )
    serve.add_argument(
        "--stats-json",
        dest="stats_json_path",
        default=None,
        metavar="PATH",
        help="write the final repro.serve-stats/v1 snapshot to PATH on shutdown",
    )

    submit = subparsers.add_parser(
        "submit",
        parents=[logging_parent],
        help="submit a scenario or sweep to a running `repro serve` instance",
    )
    submit.add_argument(
        "target",
        help="registered scenario name, JSON spec file, or built-in sweep "
        "plan name (plans submit as sweeps)",
    )
    submit.add_argument(
        "--set",
        action="append",
        default=[],
        dest="overrides",
        metavar="KEY=VALUE",
        help="override a spec field by dotted path before submitting",
    )
    submit.add_argument("--seed", type=int, default=None, help="override the scenario seed")
    submit.add_argument(
        "--grid",
        action="append",
        default=[],
        dest="grid",
        metavar="PATH=V1,V2,...",
        help="submit a sweep of the target over these axes (repeatable)",
    )
    submit.add_argument("--host", default="127.0.0.1", help="server address (default: 127.0.0.1)")
    submit.add_argument("--port", type=int, default=8737, help="server port (default: 8737)")
    submit.add_argument(
        "--token",
        default=None,
        help="API token identifying this client to the server's quotas",
    )
    submit.add_argument(
        "--wait",
        action="store_true",
        help="follow the job's progress stream until it finishes",
    )
    submit.add_argument(
        "--json",
        dest="json_path",
        default=None,
        metavar="PATH",
        help="write the served result envelope to PATH ('-' prints it); "
        "implies --wait",
    )

    store_cmd = subparsers.add_parser(
        "store", help="inspect and maintain the content-addressed results store"
    )
    store_sub = store_cmd.add_subparsers(dest="store_command", required=True)
    verify = store_sub.add_parser(
        "verify",
        parents=[logging_parent],
        help="audit every stored object (reparse, re-hash, validate)",
    )
    verify.add_argument(
        "--store",
        default=".repro-store",
        metavar="DIR",
        help="store directory to audit (default: .repro-store)",
    )
    verify.add_argument(
        "--heal",
        action="store_true",
        help="delete corrupt and orphaned files (units recompute on demand)",
    )
    verify.add_argument(
        "--json",
        dest="json_path",
        default=None,
        metavar="PATH",
        help="write the repro.store-audit/v1 report to PATH ('-' prints it)",
    )
    return parser


def _add_replication_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the batch-simulation flags shared by fig7 and fig8."""
    parser.add_argument(
        "--replications",
        type=int,
        default=None,
        help="average the curves over this many seed-streamed replications",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker threads used to run replications concurrently",
    )


def _override(config, **overrides):
    """Apply flat field overrides to a config/spec, skipping ``None`` values.

    Shared by the legacy flag handlers and (through dotted paths) the
    ``run --set`` machinery — both funnel into
    :func:`repro.spec.apply_overrides`.
    """
    return apply_overrides(config, overrides)


def _preset(args) -> str:
    """Legacy preset selection: ``--paper`` switches quick -> paper scale."""
    return "paper" if args.paper else "quick"


def _load_spec(reference: str) -> ScenarioSpec:
    """Resolve a ``run`` target: registry name or JSON spec file."""
    looks_like_file = reference.endswith(".json") or "/" in reference
    if looks_like_file:
        path = pathlib.Path(reference)
        if not path.is_file():
            raise SpecError(
                f"spec file {reference!r} does not exist (registered "
                f"scenarios: {', '.join(default_registry().names())})"
            )
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as err:
            raise SpecError(f"spec file {reference!r} is not valid JSON: {err}") from None
        return ScenarioSpec.from_dict(data, path=reference)
    return get_scenario(reference)


def _traced(callable_, trace_path, scenario):
    """Run ``callable_`` under a tracing observer when ``trace_path`` is set.

    With no trace path the callable runs under the default no-op observer,
    so the untraced path stays exactly as fast (and as deterministic) as it
    was before observability existed.
    """
    if trace_path is None:
        return callable_()
    observer = TracingObserver()
    with use_observer(observer):
        outcome = callable_()
    write_trace(trace_path, observer, scenario=scenario)
    _LOG.info(
        "wrote trace (%d spans) to %s", len(observer.spans()), trace_path
    )
    return outcome


def _run_scenario_command(args) -> str:
    spec = _load_spec(args.scenario)
    overrides = parse_set_items(args.overrides)
    if args.seed is not None:
        if "seed" in overrides and overrides["seed"] != args.seed:
            raise SpecError(
                f"conflicting seeds: --seed {args.seed} vs "
                f"--set seed={overrides['seed']}; give only one"
            )
        overrides["seed"] = args.seed
    spec = apply_overrides(spec, overrides)
    _LOG.info("running scenario %s", spec.name)
    result = _traced(lambda: run_scenario(spec), args.trace_path, spec.name)
    _LOG.info(
        "scenario %s finished in %.2fs", spec.name, result.wall_clock_s
    )
    if args.json_path == "-":
        return result.to_json()
    if args.json_path is not None:
        pathlib.Path(args.json_path).write_text(result.to_json() + "\n")
        _LOG.info("wrote result envelope to %s", args.json_path)
    return format_result(result)


def _resolve_sweep_plan(args):
    """Build the sweep plan a ``repro sweep`` invocation describes."""
    from repro.sweep import SweepPlan, builtin_plans, get_plan, parse_grid_items

    if args.target in builtin_plans():
        if args.grid or args.overrides or args.seed is not None:
            raise SpecError(
                f"sweep plan {args.target!r} is a built-in preset; "
                "--grid/--set/--seed only apply when sweeping a scenario"
            )
        return get_plan(args.target)
    base = _load_spec(args.target)
    overrides = parse_set_items(args.overrides)
    if args.seed is not None:
        overrides["seed"] = args.seed
    base = apply_overrides(base, overrides)
    return SweepPlan.from_grid(
        f"{base.name}-sweep", base, parse_grid_items(args.grid)
    )


def _sweep_status(plan, store) -> str:
    """Cache status of a plan against a store, without running anything."""
    from repro.reporting import render_table
    from repro.sweep import plan_units

    rows = []
    total_cached = total_units = 0
    for point in plan.points():
        units = plan_units(point)
        cached = sum(1 for unit in units if unit.hash in store)
        total_cached += cached
        total_units += len(units)
        rows.append(
            [
                point.index,
                point.label,
                f"{cached}/{len(units)}",
                "complete" if cached == len(units) else "pending",
                point.hash[:12],
            ]
        )
    header = (
        f"sweep {plan.name} against {store.root}: "
        f"{total_cached}/{total_units} unit(s) cached"
    )
    table = render_table(
        ["point", "overrides", "cached", "status", "spec hash"], rows
    )
    return header + "\n\n" + table


def _list_plans_text() -> str:
    from repro.reporting import render_table
    from repro.sweep import builtin_plans

    rows = [
        [plan.name, plan.num_points, plan.description]
        for plan in builtin_plans().values()
    ]
    return render_table(["plan", "points", "description"], sorted(rows))


def _run_sweep_command(args) -> str:
    from repro.sweep import ResultStore, format_store_summary, format_sweep, run_sweep

    if args.list_plans:
        return _list_plans_text()
    store = None if args.no_store else ResultStore(args.store)
    if args.target is None:
        if not args.summarize:
            raise SpecError(
                "sweep: give a scenario/plan to run, --summarize to inspect "
                "the store, or --list-plans"
            )
        if store is None:
            raise SpecError("sweep: --summarize needs a store (drop --no-store)")
        return format_store_summary(store)
    plan = _resolve_sweep_plan(args)
    if args.summarize:
        if store is None:
            raise SpecError("sweep: --summarize needs a store (drop --no-store)")
        return _sweep_status(plan, store)
    _LOG.info(
        "running sweep %s (%d point(s), backend=%s, jobs=%d)",
        plan.name, plan.num_points, args.backend, args.jobs,
    )
    try:
        sweep = _traced(
            lambda: run_sweep(
                plan, store=store, backend=args.backend, jobs=args.jobs
            ),
            args.trace_path,
            plan.name,
        )
    except ValueError as err:
        # Backend/jobs validation errors are user errors, not crashes.
        raise SpecError(str(err)) from None
    _LOG.info(
        "sweep %s: %d computed, %d cached",
        plan.name, sweep.computed_units, sweep.cached_units,
    )
    if args.stats_json_path is not None:
        pathlib.Path(args.stats_json_path).write_text(
            json.dumps(sweep.stats(), indent=2) + "\n"
        )
        _LOG.info("wrote sweep statistics to %s", args.stats_json_path)
    if args.json_path == "-":
        return json.dumps(sweep.to_dict(), indent=2)
    if args.json_path is not None:
        pathlib.Path(args.json_path).write_text(
            json.dumps(sweep.to_dict(), indent=2) + "\n"
        )
    return format_sweep(sweep)


def _list_scenarios_command(args) -> str:
    from repro.reporting import render_table

    wanted = getattr(args, "mode", None)
    registry = default_registry()
    rows = []
    for name in registry.names():
        spec = registry.get(name)
        topology = (
            f"{spec.topology.num_nodes}x{spec.topology.num_channels}"
            if not spec.network_sweep
            else ", ".join(f"{n}x{m}" for n, m in spec.network_sweep)
        )
        mode = spec.schedule.mode
        if spec.dynamics is not None:
            mode = f"dynamic/{spec.dynamics.kind}"
        if wanted is not None:
            matches = (
                mode.startswith("dynamic/")
                if wanted == "dynamic"
                else mode == wanted
            )
            if not matches:
                continue
        # Protocol scenarios are the only ones wired to the faults /
        # non-simulated transport nodes, so `--set faults.*` and
        # `--set transport.*` overrides only land there.
        accepts = "faults,transport" if spec.schedule.mode == "protocol" else "-"
        rows.append([name, mode, topology, accepts, spec.description])
    return render_table(
        ["scenario", "mode", "networks", "accepts", "description"], rows
    )


def _show_scenario_command(args) -> str:
    return json.dumps(get_scenario(args.scenario).to_dict(), indent=2)


def _trace_command(args) -> str:
    if args.trace_command != "summarize":  # pragma: no cover - argparse gates
        raise SpecError(f"unknown trace sub-command {args.trace_command!r}")
    try:
        return summarize_trace_file(args.trace_file)
    except FileNotFoundError:
        raise SpecError(f"trace file {args.trace_file!r} does not exist") from None
    except TraceError as err:
        raise SpecError(f"trace: {err}") from None


def _run_fig6(args) -> str:
    config = Fig6Config.from_scenario(f"fig6-{_preset(args)}")
    config = _override(config, seed=args.seed)
    return format_fig6(run_fig6(config))


def _run_fig7(args) -> str:
    config = Fig7Config.from_scenario(f"fig7-{_preset(args)}")
    config = _override(
        config,
        seed=args.seed,
        num_rounds=args.rounds,
        replications=args.replications,
        jobs=args.jobs,
    )
    return format_fig7(run_fig7(config))


def _run_fig8(args) -> str:
    config = Fig8Config.from_scenario(f"fig8-{_preset(args)}")
    periods = None
    if args.periods is not None:
        periods = tuple(int(part) for part in args.periods.split(",") if part.strip())
        if not periods:
            raise SystemExit("--periods must list at least one integer")
    config = _override(
        config,
        seed=args.seed,
        num_periods=args.updates,
        periods=periods,
        replications=args.replications,
        jobs=args.jobs,
    )
    return format_fig8(run_fig8(config))


def _run_complexity(args) -> str:
    config = ComplexityConfig.from_scenario(f"complexity-{_preset(args)}")
    config = _override(config, seed=args.seed)
    return format_complexity(run_complexity(config))


def _serve_command(args) -> str:
    import asyncio
    import signal

    from repro.serve import QuotaConfig, ReproServer, ResultService, ServiceConfig

    config = ServiceConfig(
        store=args.store,
        backend=args.backend,
        jobs=args.jobs,
        quota=QuotaConfig(
            max_inflight_jobs=args.max_inflight_jobs,
            units_per_minute=args.units_per_minute,
        ),
    )
    observer = TracingObserver() if args.trace_path is not None else None
    service = ResultService(config, observer=observer)

    async def _serve() -> None:
        loop = asyncio.get_running_loop()
        shutdown = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, shutdown.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        server = ReproServer(service, host=args.host, port=args.port)
        await server.start()
        print(
            f"repro serve: listening on http://{server.host}:{server.port} "
            f"(store {args.store}, backend {args.backend} x{args.jobs}) -- "
            "Ctrl-C drains and exits",
            file=sys.stderr,
            flush=True,
        )
        await shutdown.wait()
        print("repro serve: draining...", file=sys.stderr, flush=True)
        await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:  # pragma: no cover - second Ctrl-C
        pass
    stats = service.stats()
    if args.stats_json_path is not None:
        pathlib.Path(args.stats_json_path).write_text(
            json.dumps(stats, indent=2) + "\n"
        )
        _LOG.info("wrote serve statistics to %s", args.stats_json_path)
    if args.trace_path is not None:
        write_trace(args.trace_path, observer, scenario="serve")
        _LOG.info(
            "wrote trace (%d spans) to %s", len(observer.spans()), args.trace_path
        )
    counters = stats["counters"]
    return (
        f"serve: {int(counters.get('serve.requests', 0))} request(s), "
        f"{int(counters.get('serve.jobs.submitted', 0))} job(s), "
        f"{int(counters.get('serve.units.cache_hit', 0))} cached / "
        f"{int(counters.get('serve.units.computed', 0))} computed unit(s)"
    )


def _submit_payload(args):
    """Build the submission: ``("run"|"sweep", payload)``."""
    from repro.sweep import builtin_plans, parse_grid_items

    if args.target in builtin_plans():
        if args.grid or args.overrides or args.seed is not None:
            raise SpecError(
                f"submit: sweep plan {args.target!r} is a built-in preset; "
                "--grid/--set/--seed only apply when submitting a scenario"
            )
        return "sweep", {"plan": args.target}
    spec = _load_spec(args.target)
    overrides = parse_set_items(args.overrides)
    if args.seed is not None:
        overrides["seed"] = args.seed
    spec = apply_overrides(spec, overrides)
    if args.grid:
        grid = {
            path: list(values)
            for path, values in parse_grid_items(args.grid).items()
        }
        return "sweep", {
            "base": spec.to_dict(),
            "grid": grid,
            "name": f"{spec.name}-sweep",
        }
    return "run", {"spec": spec.to_dict()}


def _format_job(descriptor, base_url: str) -> str:
    lines = [
        f"job {descriptor['id']} ({descriptor['kind']} {descriptor['name']}): "
        f"{descriptor['state']}",
        f"  units: {descriptor['total_units']} total, "
        f"{descriptor['cached_units']} cached, "
        f"{descriptor['computed_units']} computed",
        f"  result: {base_url}/v1/jobs/{descriptor['id']}/result",
    ]
    if descriptor.get("error"):
        lines.insert(1, f"  error: {descriptor['error']}")
    return "\n".join(lines)


def _submit_command(args) -> str:
    from repro.serve import ServeClient, ServeError

    kind, payload = _submit_payload(args)
    wait = args.wait or args.json_path is not None
    client = ServeClient(args.host, args.port, token=args.token)
    try:
        if kind == "run":
            response = client.submit_run(payload["spec"])
        else:
            response = client.submit_sweep(payload)
        descriptor = response["job"]
        _LOG.info(
            "submitted job %s (%s, state %s)",
            descriptor["id"], kind, descriptor["state"],
        )
        if wait and descriptor["state"] not in ("done", "failed"):
            for name, event in client.events(descriptor["id"]):
                if name == "progress":
                    _LOG.info(
                        "job %s: %s/%s unit(s)",
                        descriptor["id"],
                        event.get("completed_units"),
                        event.get("total_units"),
                    )
            descriptor = client.job(descriptor["id"])
        if descriptor["state"] == "failed":
            raise SpecError(
                f"submit: job {descriptor['id']} failed: {descriptor['error']}"
            )
        if args.json_path is not None:
            envelope = client.result_bytes(descriptor["id"])
            if args.json_path == "-":
                text = envelope.decode("utf-8")
                # ``print`` re-adds the newline: stdout stays byte-identical
                # to ``repro run --json -``.
                return text[:-1] if text.endswith("\n") else text
            pathlib.Path(args.json_path).write_bytes(envelope)
            _LOG.info("wrote result envelope to %s", args.json_path)
    except ServeError as err:
        raise SpecError(f"submit: {err}") from None
    except ConnectionError as err:
        raise SpecError(
            f"submit: cannot reach server at {args.host}:{args.port} ({err}); "
            "is `repro serve` running?"
        ) from None
    return _format_job(descriptor, f"http://{args.host}:{args.port}")


def _store_verify_command(args) -> str:
    from repro.reporting import render_table
    from repro.sweep import ResultStore

    store = ResultStore(args.store)
    report = store.audit(heal=args.heal)
    if args.json_path is not None and args.json_path != "-":
        pathlib.Path(args.json_path).write_text(
            json.dumps(report.to_dict(), indent=2) + "\n"
        )
        _LOG.info("wrote audit report to %s", args.json_path)
    if args.json_path == "-":
        return json.dumps(report.to_dict(), indent=2)
    lines = [
        f"store {report.root}: {report.checked} file(s) checked, "
        f"{report.valid} valid, {len(report.corrupt)} corrupt, "
        f"{len(report.orphans)} orphaned"
    ]
    if report.issues:
        rows = [
            [issue.kind, issue.path, "yes" if issue.healed else "no", issue.detail]
            for issue in report.issues
        ]
        lines.append("")
        lines.append(render_table(["kind", "path", "healed", "detail"], rows))
    if report.ok:
        lines.append("store is clean")
    elif report.healed:
        lines.append("issues healed; affected units recompute on next request")
    text = "\n".join(lines)
    if not report.ok and not report.healed:
        # Report-only mode found problems: non-zero exit for scripting.
        raise SystemExit(text)
    return text


def _store_command(args) -> str:
    if args.store_command != "verify":  # pragma: no cover - argparse gates
        raise SpecError(f"unknown store sub-command {args.store_command!r}")
    return _store_verify_command(args)


def _configure_logging(level_name: str) -> None:
    """Send diagnostics to stderr at the requested level.

    ``force=True`` rebinds the root handlers on every invocation so repeated
    in-process ``main()`` calls (tests, notebooks) honour the latest flag.
    """
    logging.basicConfig(
        level=getattr(logging, level_name.upper()),
        stream=sys.stderr,
        format="%(levelname)s %(name)s: %(message)s",
        force=True,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run one sub-command and print its report."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    _configure_logging(getattr(args, "log_level", "warning"))
    handlers = {
        "run": _run_scenario_command,
        "sweep": _run_sweep_command,
        "trace": _trace_command,
        "list": _list_scenarios_command,
        "show": _show_scenario_command,
        "fig6": _run_fig6,
        "fig7": _run_fig7,
        "fig8": _run_fig8,
        "table2": lambda _args: format_table2(),
        "complexity": _run_complexity,
        "serve": _serve_command,
        "submit": _submit_command,
        "store": _store_command,
    }
    try:
        output = handlers[args.command](args)
    except SpecError as err:
        raise SystemExit(f"repro: {err}") from None
    print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
