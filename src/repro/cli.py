"""Command-line entry point for the experiment harness.

Usage (after installing the package)::

    python -m repro fig6 [--paper]
    python -m repro fig7 [--paper] [--rounds N] [--replications R] [--jobs J]
    python -m repro fig8 [--paper] [--periods 1,5,10,20] [--updates N] \
                         [--replications R] [--jobs J]
    python -m repro table2
    python -m repro complexity

Every sub-command prints the same text tables/series as the corresponding
``examples/`` script; ``--paper`` switches from the fast scaled-down
configuration to the exact Section V parameters.  ``--replications``
averages the fig7/fig8 curves over seed-streamed independent replications
(run on ``--jobs`` worker threads), as in the paper's averaged plots.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.experiments import (
    ComplexityConfig,
    Fig6Config,
    Fig7Config,
    Fig8Config,
    format_complexity,
    format_fig6,
    format_fig7,
    format_fig8,
    format_table2,
    run_complexity,
    run_fig6,
    run_fig7,
    run_fig8,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the evaluation of 'Almost Optimal Channel Access "
        "in Multi-Hop Networks With Unknown Channel Variables' (ICDCS 2014).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    fig6 = subparsers.add_parser("fig6", help="Fig. 6: strategy-decision convergence")
    fig6.add_argument("--paper", action="store_true", help="use the paper-scale networks")
    fig6.add_argument("--seed", type=int, default=None, help="override the random seed")

    fig7 = subparsers.add_parser("fig7", help="Fig. 7: practical regret vs. LLR")
    fig7.add_argument("--paper", action="store_true", help="use the paper-scale network")
    fig7.add_argument("--rounds", type=int, default=None, help="number of time slots")
    fig7.add_argument("--seed", type=int, default=None, help="override the random seed")
    _add_replication_arguments(fig7)

    fig8 = subparsers.add_parser("fig8", help="Fig. 8: periodic-update throughput")
    fig8.add_argument("--paper", action="store_true", help="use the paper-scale network")
    fig8.add_argument(
        "--periods", type=str, default=None, help="comma-separated update periods"
    )
    fig8.add_argument("--updates", type=int, default=None, help="updates per period length")
    fig8.add_argument("--seed", type=int, default=None, help="override the random seed")
    _add_replication_arguments(fig8)

    subparsers.add_parser("table2", help="Table II: round timing parameters")

    complexity = subparsers.add_parser(
        "complexity", help="Section IV-C complexity measurements"
    )
    complexity.add_argument("--seed", type=int, default=None, help="override the random seed")
    return parser


def _add_replication_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the batch-simulation flags shared by fig7 and fig8."""
    parser.add_argument(
        "--replications",
        type=int,
        default=None,
        help="average the curves over this many seed-streamed replications",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker threads used to run replications concurrently",
    )


def _replace(config, **overrides):
    """dataclasses.replace that skips ``None`` overrides."""
    from dataclasses import replace

    return replace(config, **{k: v for k, v in overrides.items() if v is not None})


def _run_fig6(args) -> str:
    config = Fig6Config.paper() if args.paper else Fig6Config.quick()
    config = _replace(config, seed=args.seed)
    return format_fig6(run_fig6(config))


def _run_fig7(args) -> str:
    config = Fig7Config.paper() if args.paper else Fig7Config.quick()
    config = _replace(
        config,
        seed=args.seed,
        num_rounds=args.rounds,
        replications=args.replications,
        jobs=args.jobs,
    )
    return format_fig7(run_fig7(config))


def _run_fig8(args) -> str:
    config = Fig8Config.paper() if args.paper else Fig8Config.quick()
    periods = None
    if args.periods is not None:
        periods = tuple(int(part) for part in args.periods.split(",") if part.strip())
        if not periods:
            raise SystemExit("--periods must list at least one integer")
    config = _replace(
        config,
        seed=args.seed,
        num_periods=args.updates,
        periods=periods,
        replications=args.replications,
        jobs=args.jobs,
    )
    return format_fig8(run_fig8(config))


def _run_complexity(args) -> str:
    config = ComplexityConfig.paper()
    config = _replace(config, seed=args.seed)
    return format_complexity(run_complexity(config))


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run one experiment sub-command and print its report."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    handlers = {
        "fig6": _run_fig6,
        "fig7": _run_fig7,
        "fig8": _run_fig8,
        "table2": lambda _args: format_table2(),
        "complexity": _run_complexity,
    }
    output = handlers[args.command](args)
    print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
