"""High-level convenience API.

Most users want to: build a network, attach channel statistics, pick a policy
and a strategy-decision engine, then simulate.  :class:`ChannelAccessSystem`
wires those pieces together with the paper's defaults (distributed robust
PTAS with ``r = 2`` and the combinatorial-UCB learning policy) while keeping
every component swappable.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.channels.state import ChannelState
from repro.core.policies import (
    CombinatorialUCBPolicy,
    LLRPolicy,
    OraclePolicy,
    Policy,
)
from repro.distributed.framework import DistributedMWISSolver
from repro.graph.conflict_graph import ConflictGraph
from repro.graph.extended import ExtendedConflictGraph
from repro.mwis.base import MWISSolver
from repro.mwis.exact import ExactMWISSolver
from repro.sim.batch import BatchResult, BatchSimulator, child_seed_sequences
from repro.sim.engine import Simulator
from repro.sim.periodic import PeriodicResult, PeriodicSimulator
from repro.sim.results import SimulationResult
from repro.sim.timing import TimingConfig

__all__ = ["ChannelAccessSystem"]


class ChannelAccessSystem:
    """End-to-end wiring of one network + channel environment + policies.

    Parameters
    ----------
    conflict_graph:
        The original conflict graph ``G`` (users + conflicts + channel count).
    channels:
        The ground-truth channel state; must match ``G`` in shape.
    timing:
        Round timing (defaults to the paper's Table II values).
    seed:
        Root seed of the per-run random streams — an int, ``None`` (OS
        entropy) or a ``numpy.random.SeedSequence``.

    Notes
    -----
    Each :meth:`simulate` / :meth:`simulate_periodic` call draws from its own
    random stream: the ``k``-th run on a system consumes child ``k`` spawned
    from the system seed (the exact streams
    :func:`repro.sim.batch.replication_rngs` produces), so run ``k`` is
    bit-reproducible regardless of how long earlier runs were, and a
    sequential ``simulate`` call matches replication 0 of
    :meth:`simulate_batch` exactly.  *Behaviour change (intentional):*
    earlier versions shared one mutable generator across calls, so a second
    run's draws silently depended on how many rounds the first consumed;
    traces from those versions are not bitwise comparable.
    """

    def __init__(
        self,
        conflict_graph: ConflictGraph,
        channels: ChannelState,
        timing: Optional[TimingConfig] = None,
        seed: Optional[int] = None,
    ) -> None:
        if (
            channels.num_nodes != conflict_graph.num_nodes
            or channels.num_channels != conflict_graph.num_channels
        ):
            raise ValueError(
                "channel state shape does not match the conflict graph"
            )
        self.conflict_graph = conflict_graph
        self.extended_graph = ExtendedConflictGraph(conflict_graph)
        self.channels = channels
        self.timing = timing if timing is not None else TimingConfig.paper_defaults()
        # Root of the per-run streams.  Resolved once so that seed=None
        # (OS entropy) still gives every run of this system a stream from
        # the same root.
        self._root_seq = (
            seed
            if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )
        self._runs_started = 0

    def _next_run_rng(self) -> np.random.Generator:
        """The random stream of the next sequential run (child ``k`` of the seed)."""
        (child,) = child_seed_sequences(
            self._root_seq, 1, first=self._runs_started
        )
        self._runs_started += 1
        return np.random.default_rng(child)

    # ------------------------------------------------------------------
    # Component factories
    # ------------------------------------------------------------------
    def distributed_solver(
        self, r: int = 2, max_mini_rounds: Optional[int] = None
    ) -> DistributedMWISSolver:
        """The paper's strategy-decision engine (Algorithm 3)."""
        return DistributedMWISSolver(
            self.extended_graph, r=r, max_mini_rounds=max_mini_rounds
        )

    def reward_scale(self) -> float:
        """Exploration-bonus scale: the largest true mean rate of the network.

        The regret analysis assumes rewards in ``[0, 1]``; the Section V
        experiments use kbps rates, so the exploration bonus is scaled by the
        reward range (the radio's maximum supported rate, which is public
        hardware knowledge, not a learned quantity).
        """
        return float(self.channels.mean_matrix().max())

    def paper_policy(
        self, solver: Optional[MWISSolver] = None, r: int = 2
    ) -> CombinatorialUCBPolicy:
        """The paper's learning policy (Algorithm 2) with the chosen solver.

        Without an explicit solver the distributed robust PTAS is used, which
        is the full distributed scheme evaluated in the paper.
        """
        solver = solver if solver is not None else self.distributed_solver(r=r)
        return CombinatorialUCBPolicy(
            self.extended_graph, solver=solver, reward_scale=self.reward_scale()
        )

    def llr_policy(
        self, solver: Optional[MWISSolver] = None, r: int = 2
    ) -> LLRPolicy:
        """The LLR baseline policy the paper compares against."""
        solver = solver if solver is not None else self.distributed_solver(r=r)
        return LLRPolicy(
            self.extended_graph, solver=solver, reward_scale=self.reward_scale()
        )

    def oracle_policy(self, solver: Optional[MWISSolver] = None) -> OraclePolicy:
        """The genie policy playing the optimal fixed strategy."""
        solver = solver if solver is not None else ExactMWISSolver()
        return OraclePolicy(
            self.extended_graph, self.channels.mean_vector(), solver=solver
        )

    def optimal_value(self) -> float:
        """Expected throughput ``R_1`` of the optimal fixed strategy.

        Computed by exact MWIS on the true means — only feasible for small
        networks, exactly as in the paper's regret study.
        """
        return self.oracle_policy().optimal_value()

    # ------------------------------------------------------------------
    # Simulation entry points
    # ------------------------------------------------------------------
    def simulate(
        self,
        policy: Policy,
        num_rounds: int,
        optimal_value: Optional[float] = None,
    ) -> SimulationResult:
        """Run ``policy`` for ``num_rounds`` rounds with per-round updates.

        The ``k``-th run on this system consumes its own stream (child ``k``
        of the system seed), so it is reproducible in isolation; the first
        run matches replication 0 of :meth:`simulate_batch` bit for bit.
        """
        simulator = Simulator(
            self.extended_graph,
            self.channels,
            timing=self.timing,
            optimal_value=optimal_value,
            rng=self._next_run_rng(),
        )
        return simulator.run(policy, num_rounds)

    def simulate_batch(
        self,
        policy_factory: Callable[[int], Policy],
        num_rounds: int,
        replications: int = 1,
        jobs: int = 1,
        optimal_value: Optional[float] = None,
        backend: Optional[str] = None,
        first_replication: int = 0,
    ) -> BatchResult:
        """Run ``replications`` independent simulations of one policy.

        ``policy_factory`` receives the global replication index and must
        return a fresh policy instance; each replication gets its own random
        stream spawned from this system's seed, so the batch is reproducible
        and replication 0 matches a sequential :meth:`simulate`-style run
        driven by ``repro.sim.replication_rngs(seed, 1)[0]``.

        ``backend`` selects the executor (``serial`` / ``thread`` /
        ``process``, see :mod:`repro.sim.backends`); ``first_replication``
        shifts the seed-stream window so a one-replication batch reproduces
        replication ``i`` of a larger batch bit for bit.
        """
        simulator = BatchSimulator(
            self.extended_graph,
            self.channels,
            timing=self.timing,
            optimal_value=optimal_value,
            # The resolved root (not the raw seed): with seed=None the root
            # entropy is drawn once in __init__, so batches and sequential
            # runs on this system share one stream family.
            seed=self._root_seq,
        )
        return simulator.run(
            policy_factory,
            num_rounds,
            replications=replications,
            jobs=jobs,
            backend=backend,
            first_replication=first_replication,
        )

    def simulate_periodic(
        self, policy: Policy, num_periods: int, period_slots: int
    ) -> PeriodicResult:
        """Run ``policy`` with strategy decisions every ``period_slots`` slots.

        Like :meth:`simulate`, each call consumes its own per-run stream
        spawned from the system seed.
        """
        simulator = PeriodicSimulator(
            self.extended_graph,
            self.channels,
            period_slots=period_slots,
            timing=self.timing,
            rng=self._next_run_rng(),
        )
        return simulator.run(policy, num_periods)
