"""Small numeric helpers shared by the experiment harness."""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

__all__ = ["running_average", "summarize_trace", "tail_mean"]


def running_average(values: Sequence[float]) -> np.ndarray:
    """Running (prefix) average of a sequence.

    ``running_average(x)[i] = mean(x[: i + 1])``; an empty input yields an
    empty array.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return arr
    return np.cumsum(arr) / np.arange(1, arr.size + 1)


def tail_mean(values: Sequence[float], fraction: float = 0.1) -> float:
    """Mean of the last ``fraction`` of the sequence (converged value proxy)."""
    if not (0.0 < fraction <= 1.0):
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("tail_mean() of an empty sequence")
    tail = max(1, int(round(arr.size * fraction)))
    return float(arr[-tail:].mean())


def summarize_trace(values: Sequence[float]) -> Dict[str, float]:
    """Summary statistics of a trace (used in the text reports)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("summarize_trace() of an empty sequence")
    return {
        "first": float(arr[0]),
        "last": float(arr[-1]),
        "min": float(arr.min()),
        "max": float(arr.max()),
        "mean": float(arr.mean()),
        "tail_mean": tail_mean(arr, fraction=0.1),
    }
