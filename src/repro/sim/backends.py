"""Pluggable execution backends for embarrassingly parallel work units.

One tiny abstraction serves both replication batches
(:class:`repro.sim.batch.BatchSimulator`) and parameter sweeps
(:mod:`repro.sweep`): a backend maps a function over an ordered list of work
items and returns the results in the same order.

* ``serial`` — run in the calling thread; zero overhead, always available.
* ``thread`` — a :class:`~concurrent.futures.ThreadPoolExecutor`; cheap to
  start but GIL-bound for the pure-Python round loop, so it mainly helps
  workloads that release the GIL.
* ``process`` — a :class:`~concurrent.futures.ProcessPoolExecutor`; true
  multicore.  The function and every work item must be picklable, which the
  backend validates **eagerly** so a bad payload fails with an actionable
  error before any worker starts.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, List, Sequence, Union

__all__ = [
    "BACKEND_NAMES",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "ensure_picklable",
    "resolve_backend",
]

#: Names accepted by :func:`resolve_backend` (and the CLI ``--backend`` flag).
BACKEND_NAMES = ("serial", "thread", "process")


def ensure_picklable(obj, description: str) -> None:
    """Raise a :class:`ValueError` naming ``obj`` when it cannot be pickled.

    Process pools ship work to workers with :mod:`pickle`; a closure or
    lambda only fails once a worker tries to deserialize it, which surfaces
    as an opaque mid-run crash.  This check front-loads that failure.
    """
    try:
        pickle.dumps(obj)
    except Exception as err:
        raise ValueError(
            f"{description} cannot be sent to worker processes because it is "
            f"not picklable ({type(err).__name__}: {err}). Define it at module "
            "level (lambdas and closures cannot cross process boundaries), or "
            "drive the run through the spec layer (repro.sweep / ScenarioSpec), "
            "whose workers rebuild policies from declarative specs instead of "
            "pickling them."
        ) from err


class ExecutionBackend:
    """Maps a function over work items, preserving item order."""

    #: Registry name of the backend.
    name: str = "abstract"

    def map(self, fn: Callable, items: Sequence, jobs: int) -> List:
        """Apply ``fn`` to every item using up to ``jobs`` workers."""
        raise NotImplementedError

    def _check_jobs(self, jobs: int) -> None:
        if jobs <= 0:
            raise ValueError(f"jobs must be positive, got {jobs}")


class SerialBackend(ExecutionBackend):
    """Run every item in the calling thread, one after the other."""

    name = "serial"

    def map(self, fn: Callable, items: Sequence, jobs: int = 1) -> List:
        self._check_jobs(jobs)
        return [fn(item) for item in items]


class ThreadBackend(ExecutionBackend):
    """Run items on a thread pool (GIL-bound for pure-Python work)."""

    name = "thread"

    def map(self, fn: Callable, items: Sequence, jobs: int) -> List:
        self._check_jobs(jobs)
        if jobs == 1 or len(items) <= 1:
            return [fn(item) for item in items]
        with ThreadPoolExecutor(max_workers=min(jobs, len(items))) as pool:
            return list(pool.map(fn, items))


class ProcessBackend(ExecutionBackend):
    """Run items on a process pool (true multicore execution).

    ``fn`` must be a module-level callable and every item picklable; both
    are validated before the pool starts.
    """

    name = "process"

    def map(self, fn: Callable, items: Sequence, jobs: int) -> List:
        self._check_jobs(jobs)
        if not items:
            return []
        # Validate the function and one representative item up front (work
        # items of one map call are structurally homogeneous); the pool
        # pickles every item anyway on submit, so checking all of them here
        # would double the serialization cost for zero extra safety.
        ensure_picklable(fn, f"the work function {fn!r}")
        ensure_picklable(items[0], f"work item 0 ({type(items[0]).__name__})")
        with ProcessPoolExecutor(max_workers=min(jobs, len(items))) as pool:
            return list(pool.map(fn, items))


_BACKENDS = {
    SerialBackend.name: SerialBackend,
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
}


def resolve_backend(
    backend: Union[str, ExecutionBackend, None], default: str = "serial"
) -> ExecutionBackend:
    """Resolve a backend name (or pass through an instance).

    ``None`` resolves to ``default``.  Unknown names raise a
    :class:`ValueError` listing the available backends.
    """
    if backend is None:
        backend = default
    if isinstance(backend, ExecutionBackend):
        return backend
    if isinstance(backend, str):
        try:
            return _BACKENDS[backend]()
        except KeyError:
            raise ValueError(
                f"unknown execution backend {backend!r}; "
                f"choose one of {sorted(_BACKENDS)}"
            ) from None
    raise TypeError(
        f"backend must be a name or an ExecutionBackend, got {type(backend).__name__}"
    )
