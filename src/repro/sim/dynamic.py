"""Round-by-round simulation under topology dynamics.

:class:`DynamicSimulator` is the dynamic-topology counterpart of
:class:`~repro.sim.engine.Simulator`: it drives one policy through ``n``
learning rounds while threading the events of an
:class:`~repro.dynamics.events.EventSchedule` between rounds.  Before the
round-``t`` strategy decision every event scheduled for round ``t`` is
applied *incrementally* to the engine's live graphs, per-topology caches
(r-hop neighbourhoods, the protocol's previous-strategy memory) are
invalidated, and the next decision re-converges from scratch.

Per round it records the usual reward trace plus the dynamics-specific
measurements: the number of active nodes, the protocol's mini-rounds and
message counts for the decision, and — when a dynamic oracle is enabled —
the optimal expected throughput of the *current* topology, which turns the
reward trace into a dynamic-regret trace.  Each event batch additionally
yields an :class:`EventBatchRecord` capturing the re-convergence cost
(mini-rounds and messages of the first decision after the change) — the
"messages per event" / "re-convergence rounds" metrics of the churn
scenarios.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.channels.state import ChannelState
from repro.core.policies import Policy
from repro.core.strategy import Strategy
from repro.dynamics.engine import DynamicStrategyEngine
from repro.dynamics.events import EventSchedule
from repro.dynamics.graph import index_frame
from repro.mwis.base import MWISSolver
from repro.mwis.local import solve_local_mwis
from repro.obs import current_observer
from repro.sim.timing import TimingConfig

__all__ = ["DynamicRoundRecord", "EventBatchRecord", "DynamicRunResult", "DynamicSimulator"]


@dataclass(frozen=True)
class DynamicRoundRecord:
    """Everything measured in one learning round under dynamics."""

    round_index: int
    strategy: Strategy
    expected_reward: float
    observed_reward: float
    active_nodes: int
    num_events: int
    #: Mini-rounds / messages of this round's strategy decision (0 when the
    #: policy decided without the distributed protocol).
    mini_rounds: int
    messages: int
    deliveries: int
    #: Optimal expected throughput of the current topology (dynamic oracle);
    #: ``None`` when the oracle is disabled.
    optimal_value: Optional[float]
    duration_s: float


@dataclass(frozen=True)
class EventBatchRecord:
    """One applied event batch plus the re-convergence cost it caused."""

    round_index: int
    num_events: int
    touched_vertices: int
    recomputed_neighborhoods: int
    active_nodes: int
    num_edges: int
    #: Cost of the first strategy decision after the change.
    reconvergence_mini_rounds: int
    messages: int
    deliveries: int


@dataclass
class DynamicRunResult:
    """Full trace of one policy run under topology dynamics."""

    policy_name: str
    rounds: List[DynamicRoundRecord] = field(default_factory=list)
    event_batches: List[EventBatchRecord] = field(default_factory=list)

    @property
    def num_rounds(self) -> int:
        """Number of simulated rounds."""
        return len(self.rounds)

    @property
    def num_events(self) -> int:
        """Total number of applied topology events."""
        return sum(batch.num_events for batch in self.event_batches)

    def expected_reward_trace(self) -> np.ndarray:
        """Per-round expected throughput of the played strategies."""
        return np.array([record.expected_reward for record in self.rounds], dtype=float)

    def optimal_value_trace(self) -> Optional[np.ndarray]:
        """Per-round dynamic-oracle value (``None`` when disabled)."""
        if any(record.optimal_value is None for record in self.rounds):
            return None
        return np.array([record.optimal_value for record in self.rounds], dtype=float)

    def dynamic_regret_trace(self) -> Optional[np.ndarray]:
        """Per-round gap to the dynamic oracle (``None`` when disabled)."""
        optimal = self.optimal_value_trace()
        if optimal is None:
            return None
        return optimal - self.expected_reward_trace()

    def active_nodes_trace(self) -> np.ndarray:
        """Per-round number of active nodes."""
        return np.array([record.active_nodes for record in self.rounds], dtype=float)

    def mini_rounds_trace(self) -> np.ndarray:
        """Per-round protocol mini-rounds of the strategy decision."""
        return np.array([record.mini_rounds for record in self.rounds], dtype=float)

    def messages_trace(self) -> np.ndarray:
        """Per-round protocol broadcasts of the strategy decision."""
        return np.array([record.messages for record in self.rounds], dtype=float)

    def total_messages(self) -> int:
        """Broadcasts originated across all rounds."""
        return int(sum(record.messages for record in self.rounds))

    def total_deliveries(self) -> int:
        """Message deliveries across all rounds."""
        return int(sum(record.deliveries for record in self.rounds))


class DynamicSimulator:
    """Simulate one policy on a dynamically changing topology.

    Parameters
    ----------
    engine:
        A *fresh* :class:`~repro.dynamics.engine.DynamicStrategyEngine`
        (the run mutates it; one engine per run).
    channels:
        Ground-truth channel state over the full node universe.
    schedule:
        The topology events threaded between rounds.
    timing:
        Round timing (defaults to the paper's Table II values).
    rng:
        Random generator driving the channel draws.
    compute_optimal:
        When ``True``, re-solve the optimal expected throughput of the
        current topology (exact MWIS over the active vertices) at the start
        and after every event batch — the dynamic-oracle benchmark.  Only
        feasible for small networks.
    optimal_solver:
        Solver for the dynamic oracle (default exact enumeration).
    frame:
        The static arm-index frame (see
        :func:`repro.dynamics.graph.index_frame`).  Callers that already
        built one for their policies can pass it in; ``None`` builds it.
    """

    def __init__(
        self,
        engine: DynamicStrategyEngine,
        channels: ChannelState,
        schedule: EventSchedule,
        timing: Optional[TimingConfig] = None,
        rng: Optional[np.random.Generator] = None,
        compute_optimal: bool = False,
        optimal_solver: Optional[MWISSolver] = None,
        frame=None,
    ) -> None:
        topology = engine.topology
        if (
            channels.num_nodes != topology.num_nodes
            or channels.num_channels != topology.num_channels
        ):
            raise ValueError(
                "channel state shape "
                f"({channels.num_nodes}x{channels.num_channels}) does not match "
                f"the topology ({topology.num_nodes}x{topology.num_channels})"
            )
        if engine.num_event_batches:
            raise ValueError(
                "the engine has already applied events; build a fresh engine "
                "per simulation run"
            )
        self._engine = engine
        self._channels = channels
        self._schedule = schedule
        self._timing = timing if timing is not None else TimingConfig.paper_defaults()
        self._rng = rng if rng is not None else np.random.default_rng()
        self._compute_optimal = compute_optimal
        self._optimal_solver = optimal_solver
        # Static index frame: vertex <-> (node, channel) never changes, only
        # edges do; feasibility is checked against the live graph instead.
        if frame is not None and (
            frame.num_nodes != topology.num_nodes
            or frame.num_channels != topology.num_channels
        ):
            raise ValueError(
                f"index frame shape ({frame.num_nodes}x{frame.num_channels}) "
                f"does not match the topology "
                f"({topology.num_nodes}x{topology.num_channels})"
            )
        self._index_graph = (
            frame
            if frame is not None
            else index_frame(topology.num_nodes, topology.num_channels)
        )
        self._consumed = False

    @property
    def engine(self) -> DynamicStrategyEngine:
        """The dynamic-topology engine driving this run."""
        return self._engine

    @property
    def timing(self) -> TimingConfig:
        """The round timing configuration."""
        return self._timing

    def _optimal_value(self) -> Optional[float]:
        if not self._compute_optimal:
            return None
        active = self._engine.extended.active_vertices()
        if not active:
            return 0.0
        solution = solve_local_mwis(
            self._engine.extended.adjacency,
            self._channels.mean_vector(),
            active,
            solver=self._optimal_solver,
        )
        return float(solution.weight)

    def _total_solves(self) -> int:
        return sum(solver.num_solves for solver in self._engine.solvers)

    def _decision_costs(self) -> "tuple[int, int, int]":
        """Mini-rounds / messages / deliveries of the latest decision."""
        for solver in reversed(self._engine.solvers):
            result = solver.last_result
            if result is not None:
                communication = result.costs.communication
                return (
                    result.num_mini_rounds,
                    communication.total_messages,
                    communication.total_deliveries,
                )
        return (0, 0, 0)

    def run(self, policy: Policy, num_rounds: int) -> DynamicRunResult:
        """Run ``policy`` for ``num_rounds`` rounds, threading the schedule."""
        if num_rounds <= 0:
            raise ValueError(f"num_rounds must be positive, got {num_rounds}")
        if self._consumed:
            raise RuntimeError(
                "this DynamicSimulator already ran; build a fresh engine and "
                "simulator per run"
            )
        self._consumed = True
        result = DynamicRunResult(policy_name=policy.name)
        optimal_value = self._optimal_value()
        obs = current_observer()
        with obs.span("sim.dynamic_run", policy=policy.name, num_rounds=num_rounds):
            self._run_rounds(policy, num_rounds, result, optimal_value, obs)
        return result

    def _run_rounds(self, policy, num_rounds, result, optimal_value, obs) -> None:
        for round_index in range(1, num_rounds + 1):
            with obs.span("sim.round", round=round_index):
                started_at = time.perf_counter()
                events = self._schedule.events_for_round(round_index)
                report = None
                if events:
                    with obs.span(
                        "dynamics.apply_events",
                        round=round_index,
                        num_events=len(events),
                    ):
                        report = self._engine.apply_events(events)
                        optimal_value = self._optimal_value()
                    obs.count("dynamics.events_applied", len(events))
                solves_before = self._total_solves()
                decision_started = time.perf_counter()
                strategy = policy.select_strategy(round_index)
                obs.observe(
                    "sim.select_strategy_s", time.perf_counter() - decision_started
                )
                self._validate_strategy(strategy)
                # The protocol builds a fresh message network per decision, so
                # the communication counters are already per-round quantities.
                # A round in which the policy decided without running the
                # protocol (epoch-based policies) costs nothing.
                if self._total_solves() > solves_before:
                    mini_rounds, round_messages, round_deliveries = (
                        self._decision_costs()
                    )
                else:
                    mini_rounds, round_messages, round_deliveries = 0, 0, 0
                arms = strategy.arm_array(self._index_graph)
                values = self._channels.sample_arm_array(arms, self._rng)
                policy.observe_arms(round_index, strategy, arms, values)
                expected_reward = self._channels.expected_reward_arms(arms)
                record = DynamicRoundRecord(
                    round_index=round_index,
                    strategy=strategy,
                    expected_reward=expected_reward,
                    observed_reward=float(values.sum()),
                    active_nodes=self._engine.topology.num_active,
                    num_events=len(events),
                    mini_rounds=mini_rounds,
                    messages=round_messages,
                    deliveries=round_deliveries,
                    optimal_value=optimal_value,
                    duration_s=time.perf_counter() - started_at,
                )
                result.rounds.append(record)
                if report is not None:
                    result.event_batches.append(
                        EventBatchRecord(
                            round_index=round_index,
                            num_events=report.num_events,
                            touched_vertices=report.touched_vertices,
                            recomputed_neighborhoods=report.recomputed_neighborhoods,
                            active_nodes=report.active_nodes,
                            num_edges=report.num_edges,
                            reconvergence_mini_rounds=mini_rounds,
                            messages=round_messages,
                            deliveries=round_deliveries,
                        )
                    )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _validate_strategy(self, strategy: Strategy) -> None:
        """A strategy must be independent on the *current* ``H`` and may only
        schedule active nodes — both hard errors, not scoring artifacts."""
        topology = self._engine.topology
        for node, _channel in strategy:
            if not topology.is_active(node):
                raise RuntimeError(
                    f"policy scheduled departed node {node}: {strategy!r}"
                )
        arms = strategy.arms(self._index_graph)
        if not self._engine.extended.is_independent(arms):
            raise RuntimeError(
                f"policy produced a strategy that conflicts on the current "
                f"topology: {strategy!r}"
            )
