"""Round timing model (Fig. 2 and Table II of the paper).

Each round of length ``t_a`` is split into a strategy-decision part ``t_s``
and a data-transmission part ``t_d``; the strategy decision consists of ``c``
mini-rounds of length ``t_m = 2 t_b + t_l`` (one local broadcast before and
after a local computation).  The paper's simulation values (Table II):

=====================  =======
round ``t_a``          2000 ms
local broadcast t_b     100 ms
local computation t_l    50 ms
data transmission t_d  1000 ms
=====================  =======

with ``t_s = 4 t_m`` giving ``t_m = 250 ms``, ``t_s = 1000 ms`` and an
effective throughput factor ``theta = t_d / t_a = 0.5``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TimingConfig"]


@dataclass(frozen=True)
class TimingConfig:
    """Timing parameters of a single round, all in milliseconds."""

    local_broadcast_ms: float = 100.0
    local_computation_ms: float = 50.0
    data_transmission_ms: float = 1000.0
    #: Number of mini-rounds in the strategy-decision part (the paper's
    #: simulations set ``t_s = 4 t_m``, i.e. one weight-update mini-round plus
    #: three strategy-decision mini-rounds).
    decision_mini_rounds: int = 4

    def __post_init__(self) -> None:
        if self.local_broadcast_ms < 0 or self.local_computation_ms < 0:
            raise ValueError("broadcast and computation times must be non-negative")
        if self.data_transmission_ms <= 0:
            raise ValueError("data_transmission_ms must be positive")
        if self.decision_mini_rounds < 0:
            raise ValueError("decision_mini_rounds must be non-negative")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def mini_round_ms(self) -> float:
        """Length of one mini-round: ``t_m = 2 t_b + t_l``."""
        return 2.0 * self.local_broadcast_ms + self.local_computation_ms

    @property
    def strategy_decision_ms(self) -> float:
        """Length of the strategy-decision part: ``t_s = c * t_m``."""
        return self.decision_mini_rounds * self.mini_round_ms

    @property
    def round_ms(self) -> float:
        """Full round length ``t_a = t_s + t_d``."""
        return self.strategy_decision_ms + self.data_transmission_ms

    @property
    def theta(self) -> float:
        """Effective-throughput factor ``theta = t_d / t_a``."""
        return self.data_transmission_ms / self.round_ms

    # ------------------------------------------------------------------
    # Throughput scaling
    # ------------------------------------------------------------------
    def effective_throughput(self, reward: float) -> float:
        """Per-round throughput corrected for the time spent on learning."""
        return self.theta * reward

    def period_efficiency(self, period_slots: int) -> float:
        """Effective-throughput factor of a ``y``-slot update period.

        Section V-C: when the strategy is decided once per period of ``y``
        slots, the first slot only transmits for ``t_d`` while the remaining
        ``y - 1`` slots transmit for the full ``t_a``, so the efficiency is
        ``((y - 1) t_a + t_d) / (y t_a)``.  With the paper parameters this is
        1/2, 9/10, 19/20 and 39/40 for ``y`` = 1, 5, 10, 20.
        """
        if period_slots < 1:
            raise ValueError(f"period_slots must be >= 1, got {period_slots}")
        y = float(period_slots)
        return ((y - 1.0) * self.round_ms + self.data_transmission_ms) / (y * self.round_ms)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def paper_defaults(cls) -> "TimingConfig":
        """The Table II values used by all paper experiments."""
        return cls()

    @classmethod
    def ideal(cls) -> "TimingConfig":
        """No learning overhead (``theta`` approaches 1): zero-cost decisions."""
        return cls(
            local_broadcast_ms=0.0,
            local_computation_ms=0.0,
            data_transmission_ms=1000.0,
            decision_mini_rounds=0,
        )
