"""Round-by-round simulator: the outer loop of Algorithm 2.

The simulator owns the environment (extended conflict graph + channel state)
and drives one policy through ``n`` rounds:

1. the policy picks a strategy (for the paper's scheme this internally runs
   the distributed robust PTAS on the estimated weights);
2. the picked (node, channel) pairs transmit and observe sampled data rates;
3. the observations are fed back to the policy (eqs. (5), (6));
4. expected / observed / estimated throughputs are recorded.

Every produced strategy is checked to be an independent set of ``H`` — a
conflicting assignment would invalidate the throughput accounting, so it is
treated as a hard error rather than silently scored.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.channels.state import ChannelState
from repro.core.policies import Policy
from repro.core.regret import RegretTracker
from repro.core.strategy import Strategy
from repro.graph.extended import ExtendedConflictGraph
from repro.obs import current_observer
from repro.sim.results import RoundRecord, SimulationResult
from repro.sim.timing import TimingConfig

__all__ = ["Simulator"]


class Simulator:
    """Simulate a learning policy on a fixed network and channel state.

    Parameters
    ----------
    graph:
        The extended conflict graph ``H``.
    channels:
        The ground-truth channel state (must have matching ``N`` and ``M``).
    timing:
        Round timing; defaults to the paper's Table II values (``theta = 0.5``).
    optimal_value:
        Expected throughput ``R_1`` of the optimal fixed strategy, when known
        (used to fill the regret tracker).  ``None`` for large networks.
    rng:
        Random generator driving the channel draws.
    """

    def __init__(
        self,
        graph: ExtendedConflictGraph,
        channels: ChannelState,
        timing: Optional[TimingConfig] = None,
        optimal_value: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if channels.num_nodes != graph.num_nodes or channels.num_channels != graph.num_channels:
            raise ValueError(
                "channel state shape "
                f"({channels.num_nodes}x{channels.num_channels}) does not match "
                f"the graph ({graph.num_nodes}x{graph.num_channels})"
            )
        self._graph = graph
        self._channels = channels
        self._timing = timing if timing is not None else TimingConfig.paper_defaults()
        self._optimal_value = optimal_value
        self._rng = rng if rng is not None else np.random.default_rng()

    @property
    def graph(self) -> ExtendedConflictGraph:
        """The extended conflict graph."""
        return self._graph

    @property
    def channels(self) -> ChannelState:
        """The channel environment."""
        return self._channels

    @property
    def timing(self) -> TimingConfig:
        """The round timing configuration."""
        return self._timing

    def run(self, policy: Policy, num_rounds: int) -> SimulationResult:
        """Run ``policy`` for ``num_rounds`` rounds and return the full trace."""
        if num_rounds <= 0:
            raise ValueError(f"num_rounds must be positive, got {num_rounds}")
        tracker = RegretTracker(
            optimal_value=self._optimal_value, theta=self._timing.theta
        )
        result = SimulationResult(policy_name=policy.name, tracker=tracker)
        obs = current_observer()
        with obs.span("sim.run", policy=policy.name, num_rounds=num_rounds):
            for round_index in range(1, num_rounds + 1):
                with obs.span("sim.round", round=round_index):
                    started_at = time.perf_counter()
                    strategy = policy.select_strategy(round_index)
                    obs.observe(
                        "sim.select_strategy_s", time.perf_counter() - started_at
                    )
                    self._validate_strategy(strategy)
                    record = self._play_round(policy, round_index, strategy, started_at)
                    result.rounds.append(record)
                    tracker.record(record.expected_reward, record.observed_reward)
        return result

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _validate_strategy(self, strategy: Strategy) -> None:
        if not strategy.is_feasible(self._graph):
            raise RuntimeError(
                f"policy produced an infeasible strategy: {strategy!r}"
            )

    def _play_round(
        self,
        policy: Policy,
        round_index: int,
        strategy: Strategy,
        started_at: float,
    ) -> RoundRecord:
        arms = strategy.arm_array(self._graph)
        values = self._channels.sample_arm_array(arms, self._rng)
        estimated_weight = self._estimated_strategy_weight(policy, round_index, arms)
        policy.observe_arms(round_index, strategy, arms, values)
        expected_reward = self._channels.expected_reward_arms(arms)
        observed_reward = float(values.sum())
        return RoundRecord(
            round_index=round_index,
            strategy=strategy,
            expected_reward=expected_reward,
            observed_reward=observed_reward,
            estimated_weight=estimated_weight,
            duration_s=time.perf_counter() - started_at,
        )

    def _estimated_strategy_weight(
        self, policy: Policy, round_index: int, arms: np.ndarray
    ) -> Optional[float]:
        """Weight the policy's own index assigns to the played strategy.

        Only available for index-based policies exposing
        ``estimated_weights``; other policies simply record ``None``.
        The sum is a single vectorized gather over the arm-index array.
        """
        estimated_weights = getattr(policy, "estimated_weights", None)
        if not callable(estimated_weights):
            return None
        weights = np.asarray(estimated_weights(round_index), dtype=float)
        return float(weights[arms].sum())
