"""Periodic-update simulation (Section V-C of the paper).

Updating the weights (and re-running the distributed strategy decision) every
time slot costs a fixed ``t_s`` per slot, so only ``theta = t_d / t_a`` of the
time is spent transmitting.  Section V-C instead updates once per *period* of
``y`` slots: the strategy is decided in the first slot of the period and the
remaining ``y - 1`` slots only transmit.

The per-period actual average throughput is (paper notation, ``z``-th period):

    R_P(z) = [ R_x(zy + 1) * t_d  +  sum_{t = zy+2}^{(z+1) y} R_x(t) * t_a ] / (y * t_a)

and the per-period estimated throughput is

    W_P(z) = [ (y - 1) * t_a + t_d ] * W_x(zy + 1) / (y * t_a)

The experiment of Fig. 8 tracks the running averages of both quantities for
``y`` in {1, 5, 10, 20} and compares the paper's policy against LLR.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.channels.state import ChannelState
from repro.core.policies import Policy
from repro.core.strategy import Strategy
from repro.graph.extended import ExtendedConflictGraph
from repro.obs import current_observer
from repro.sim.metrics import running_average
from repro.sim.timing import TimingConfig

__all__ = ["PeriodRecord", "PeriodicResult", "PeriodicSimulator"]


@dataclass(frozen=True)
class PeriodRecord:
    """Throughput summary of one update period."""

    period_index: int
    strategy: Strategy
    #: Actual average throughput R_P(z), time-weighted as in the paper.
    actual_throughput: float
    #: Estimated average throughput W_P(z) under the policy's index weights.
    estimated_throughput: float
    #: Expected (true-mean) average throughput with the same time weighting.
    expected_throughput: float


@dataclass
class PeriodicResult:
    """Full trace of a periodic-update run."""

    policy_name: str
    period_slots: int
    records: List[PeriodRecord] = field(default_factory=list)

    @property
    def num_periods(self) -> int:
        """Number of simulated periods."""
        return len(self.records)

    @property
    def num_slots(self) -> int:
        """Total number of simulated time slots."""
        return self.num_periods * self.period_slots

    def actual_throughputs(self) -> np.ndarray:
        """Per-period actual throughput R_P(z)."""
        return np.array([r.actual_throughput for r in self.records], dtype=float)

    def estimated_throughputs(self) -> np.ndarray:
        """Per-period estimated throughput W_P(z)."""
        return np.array([r.estimated_throughput for r in self.records], dtype=float)

    def expected_throughputs(self) -> np.ndarray:
        """Per-period expected (true-mean) throughput."""
        return np.array([r.expected_throughput for r in self.records], dtype=float)

    def average_actual_trace(self) -> np.ndarray:
        """Running average of the actual throughput (the paper's R~_P(z))."""
        return running_average(self.actual_throughputs())

    def average_estimated_trace(self) -> np.ndarray:
        """Running average of the estimated throughput (the paper's W~_P(z))."""
        return running_average(self.estimated_throughputs())


class PeriodicSimulator:
    """Simulate a policy with strategy decisions once every ``y`` slots."""

    def __init__(
        self,
        graph: ExtendedConflictGraph,
        channels: ChannelState,
        period_slots: int,
        timing: Optional[TimingConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if period_slots < 1:
            raise ValueError(f"period_slots must be >= 1, got {period_slots}")
        if channels.num_nodes != graph.num_nodes or channels.num_channels != graph.num_channels:
            raise ValueError(
                "channel state shape "
                f"({channels.num_nodes}x{channels.num_channels}) does not match "
                f"the graph ({graph.num_nodes}x{graph.num_channels})"
            )
        self._graph = graph
        self._channels = channels
        self._period_slots = period_slots
        self._timing = timing if timing is not None else TimingConfig.paper_defaults()
        self._rng = rng if rng is not None else np.random.default_rng()

    @property
    def period_slots(self) -> int:
        """Number of time slots per update period ``y``."""
        return self._period_slots

    @property
    def timing(self) -> TimingConfig:
        """Round timing configuration."""
        return self._timing

    def run(self, policy: Policy, num_periods: int) -> PeriodicResult:
        """Run ``policy`` for ``num_periods`` update periods."""
        if num_periods <= 0:
            raise ValueError(f"num_periods must be positive, got {num_periods}")
        result = PeriodicResult(
            policy_name=policy.name, period_slots=self._period_slots
        )
        t_a = self._timing.round_ms
        t_d = self._timing.data_transmission_ms
        y = self._period_slots
        period_time = y * t_a
        estimation_scale = ((y - 1) * t_a + t_d) / period_time

        obs = current_observer()
        with obs.span(
            "sim.periodic_run",
            policy=policy.name,
            period_slots=y,
            num_periods=num_periods,
        ):
            for period in range(1, num_periods + 1):
                with obs.span("sim.period", period=period):
                    decision_slot = (period - 1) * y + 1
                    decision_started = time.perf_counter()
                    strategy = policy.select_strategy(decision_slot)
                    obs.observe(
                        "sim.select_strategy_s",
                        time.perf_counter() - decision_started,
                    )
                    if not strategy.is_feasible(self._graph):
                        raise RuntimeError(
                            f"policy produced an infeasible strategy: {strategy!r}"
                        )
                    arms = strategy.arm_array(self._graph)
                    estimated_weight = self._estimated_strategy_weight(
                        policy, decision_slot, arms
                    )
                    weighted_observed = 0.0
                    for slot_offset in range(y):
                        slot_index = decision_slot + slot_offset
                        values = self._channels.sample_arm_array(arms, self._rng)
                        slot_reward = float(values.sum())
                        # First slot of the period loses t_s to the strategy decision.
                        slot_weight = t_d if slot_offset == 0 else t_a
                        weighted_observed += slot_reward * slot_weight
                        policy.observe_arms(slot_index, strategy, arms, values)
                    actual_throughput = weighted_observed / period_time
                    expected_reward = self._channels.expected_reward_arms(arms)
                    expected_throughput = expected_reward * estimation_scale
                    estimated_throughput = (
                        estimated_weight * estimation_scale
                        if estimated_weight is not None
                        else float("nan")
                    )
                    result.records.append(
                        PeriodRecord(
                            period_index=period,
                            strategy=strategy,
                            actual_throughput=actual_throughput,
                            estimated_throughput=estimated_throughput,
                            expected_throughput=expected_throughput,
                        )
                    )
        return result

    def _estimated_strategy_weight(
        self, policy: Policy, round_index: int, arms: np.ndarray
    ) -> Optional[float]:
        estimated_weights = getattr(policy, "estimated_weights", None)
        if not callable(estimated_weights):
            return None
        weights = np.asarray(estimated_weights(round_index), dtype=float)
        return float(weights[arms].sum())
