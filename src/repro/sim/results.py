"""Result containers for simulation runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.regret import RegretTracker
from repro.core.strategy import Strategy

__all__ = ["RoundRecord", "SimulationResult"]


@dataclass(frozen=True)
class RoundRecord:
    """What happened in one simulated round."""

    round_index: int
    strategy: Strategy
    #: Expected throughput of the played strategy (sum of true means).
    expected_reward: float
    #: Observed throughput (sum of sampled rates).
    observed_reward: float
    #: Estimated weight of the played strategy under the policy's index.
    estimated_weight: Optional[float] = None
    #: Wall-clock seconds spent simulating the round (selection + play),
    #: recorded for benchmark trajectories; ``None`` when not measured.
    duration_s: Optional[float] = None


@dataclass
class SimulationResult:
    """Full trace of one policy run.

    The embedded :class:`~repro.core.regret.RegretTracker` holds the reward
    traces; the per-round records keep the played strategies and estimates so
    experiments can compute strategy-level statistics (e.g. how often the
    optimal strategy was played).
    """

    policy_name: str
    rounds: List[RoundRecord] = field(default_factory=list)
    tracker: RegretTracker = field(default_factory=RegretTracker)
    #: Optional extra information (communication costs, solver statistics...).
    info: Dict[str, object] = field(default_factory=dict)

    @property
    def num_rounds(self) -> int:
        """Number of simulated rounds."""
        return len(self.rounds)

    def expected_rewards(self) -> np.ndarray:
        """Per-round expected throughputs."""
        return np.array([record.expected_reward for record in self.rounds], dtype=float)

    def observed_rewards(self) -> np.ndarray:
        """Per-round observed throughputs."""
        return np.array([record.observed_reward for record in self.rounds], dtype=float)

    def estimated_weights(self) -> np.ndarray:
        """Per-round estimated strategy weights (NaN when not recorded)."""
        return np.array(
            [
                record.estimated_weight if record.estimated_weight is not None else np.nan
                for record in self.rounds
            ],
            dtype=float,
        )

    def round_durations(self) -> np.ndarray:
        """Per-round wall-clock seconds (NaN when not recorded)."""
        return np.array(
            [
                record.duration_s if record.duration_s is not None else np.nan
                for record in self.rounds
            ],
            dtype=float,
        )

    def total_wall_clock(self) -> float:
        """Total measured wall-clock seconds across all rounds."""
        durations = self.round_durations()
        return float(np.nansum(durations)) if durations.size else 0.0

    def strategy_play_counts(self) -> Dict[Strategy, int]:
        """How many times each distinct strategy was played."""
        counts: Dict[Strategy, int] = {}
        for record in self.rounds:
            counts[record.strategy] = counts.get(record.strategy, 0) + 1
        return counts

    def average_expected_throughput(self) -> float:
        """Mean per-round expected throughput over the whole run."""
        rewards = self.expected_rewards()
        return float(rewards.mean()) if rewards.size else 0.0
