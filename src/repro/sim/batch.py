"""Batch simulation: ``R`` independent replications of one policy run.

The paper's regret curves (Figs. 6-8) are averages over independent
replications of the same experiment; :class:`BatchSimulator` runs those
replications in one call.  Every replication gets

* its own policy instance (built by a caller-supplied factory), and
* its own random stream spawned from one root :class:`numpy.random.SeedSequence`,

so replication ``i`` is reproducible in isolation no matter how many
replications run or how they are scheduled across worker threads.  A
single-replication batch reproduces a sequential :class:`~repro.sim.engine.Simulator`
run bit for bit when the simulator is handed the matching spawned stream
(see :func:`replication_rngs`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Union

import numpy as np

from repro.channels.state import ChannelState
from repro.core.policies import Policy
from repro.graph.extended import ExtendedConflictGraph
from repro.obs import current_observer
from repro.sim.backends import (
    ExecutionBackend,
    ProcessBackend,
    ensure_picklable,
    resolve_backend,
)
from repro.sim.engine import Simulator
from repro.sim.results import SimulationResult
from repro.sim.timing import TimingConfig

__all__ = [
    "BatchResult",
    "BatchSimulator",
    "child_seed_sequences",
    "replication_rngs",
]

#: Builds the policy of one replication; receives the replication index so
#: stochastic policies can derive per-replication generators from it.
PolicyFactory = Callable[[int], Policy]


def child_seed_sequences(
    seed, count: int, first: int = 0
) -> List[np.random.SeedSequence]:
    """Children ``first .. first + count - 1`` of a root seed, without mutation.

    Equivalent to ``np.random.SeedSequence(seed).spawn(...)`` but derived
    from the root's ``(entropy, spawn_key)`` directly, so a caller-owned
    ``SeedSequence`` passed as ``seed`` is accepted as-is and never has its
    spawn counter advanced.  Child ``i`` is always the same stream no matter
    how often or in what order children are requested.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if first < 0:
        raise ValueError(f"first must be non-negative, got {first}")
    root = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    return [
        np.random.SeedSequence(
            entropy=root.entropy,
            spawn_key=(*root.spawn_key, first + index),
            pool_size=root.pool_size,
        )
        for index in range(count)
    ]


def replication_rngs(
    seed: Optional[int], replications: int, first: int = 0
) -> List[np.random.Generator]:
    """Independent generator streams, one per replication.

    Streams are spawned from ``np.random.SeedSequence(seed)``, so replication
    ``i`` always sees the same stream regardless of the total replication
    count or of how replications are spread over jobs.  :class:`BatchSimulator`
    consumes exactly these streams — and so does each successive
    :meth:`repro.api.ChannelAccessSystem.simulate` call — which makes a
    single replication reproducible with the sequential simulator::

        rng = replication_rngs(seed, replications=1)[0]
        trace = Simulator(graph, channels, rng=rng).run(policy, n)

    ``first`` shifts the window: ``replication_rngs(seed, 1, first=i)[0]``
    is exactly the stream replication ``i`` of a larger batch would see,
    which is how sweep work units re-run a single replication in isolation.
    """
    if replications <= 0:
        raise ValueError(f"replications must be positive, got {replications}")
    return [
        np.random.default_rng(child)
        for child in child_seed_sequences(seed, replications, first=first)
    ]


@dataclass
class BatchResult:
    """Aggregate of ``R`` independent :class:`SimulationResult` traces."""

    policy_name: str
    results: List[SimulationResult] = field(default_factory=list)

    @property
    def num_replications(self) -> int:
        """Number of replications ``R``."""
        return len(self.results)

    @property
    def num_rounds(self) -> int:
        """Number of rounds per replication."""
        return self.results[0].num_rounds if self.results else 0

    def expected_reward_matrix(self) -> np.ndarray:
        """Per-round expected throughputs, shape ``(R, num_rounds)``."""
        return np.stack([r.expected_rewards() for r in self.results])

    def observed_reward_matrix(self) -> np.ndarray:
        """Per-round observed throughputs, shape ``(R, num_rounds)``."""
        return np.stack([r.observed_rewards() for r in self.results])

    def mean_expected_rewards(self) -> np.ndarray:
        """Replication-averaged per-round expected throughput."""
        return self.expected_reward_matrix().mean(axis=0)

    def mean_observed_rewards(self) -> np.ndarray:
        """Replication-averaged per-round observed throughput."""
        return self.observed_reward_matrix().mean(axis=0)

    def std_expected_rewards(self) -> np.ndarray:
        """Across-replication standard deviation of the expected throughput."""
        return self.expected_reward_matrix().std(axis=0)

    def mean_regret_trace(self) -> np.ndarray:
        """Replication-averaged cumulative (ideal) regret trace.

        Requires the batch to have been run with ``optimal_value`` set.
        """
        return np.stack(
            [r.tracker.regret_trace() for r in self.results]
        ).mean(axis=0)

    def total_wall_clock(self) -> float:
        """Summed measured wall-clock seconds across all replications."""
        return float(sum(r.total_wall_clock() for r in self.results))


class BatchSimulator:
    """Run ``R`` independent replications of a policy on one environment.

    Parameters mirror :class:`~repro.sim.engine.Simulator` except that the
    randomness is specified as a root ``seed`` (streamed to the replications
    via ``SeedSequence.spawn``) and the policy is specified as a factory so
    every replication learns from scratch.

    Parameters
    ----------
    graph:
        The extended conflict graph ``H``.
    channels:
        The ground-truth channel state, shared across replications.  Models
        whose sampling mutates internal state (``stateful = True``, e.g. the
        Gilbert-Elliott extension) would couple the replications, so batches
        with ``replications > 1`` refuse them.
    timing:
        Round timing; defaults to the paper's Table II values.
    optimal_value:
        Expected throughput ``R_1`` of the optimal fixed strategy, when known.
    seed:
        Root seed of the replication streams (``None`` draws OS entropy).
    """

    def __init__(
        self,
        graph: ExtendedConflictGraph,
        channels: ChannelState,
        timing: Optional[TimingConfig] = None,
        optimal_value: Optional[float] = None,
        seed: Optional[int] = None,
    ) -> None:
        if channels.num_nodes != graph.num_nodes or channels.num_channels != graph.num_channels:
            raise ValueError(
                "channel state shape "
                f"({channels.num_nodes}x{channels.num_channels}) does not match "
                f"the graph ({graph.num_nodes}x{graph.num_channels})"
            )
        self._graph = graph
        self._channels = channels
        self._timing = timing if timing is not None else TimingConfig.paper_defaults()
        self._optimal_value = optimal_value
        self._seed = seed

    @property
    def graph(self) -> ExtendedConflictGraph:
        """The extended conflict graph."""
        return self._graph

    @property
    def channels(self) -> ChannelState:
        """The channel environment."""
        return self._channels

    @property
    def seed(self) -> Optional[int]:
        """Root seed of the replication streams."""
        return self._seed

    def run(
        self,
        policy_factory: PolicyFactory,
        num_rounds: int,
        replications: int = 1,
        jobs: int = 1,
        backend: Union[str, ExecutionBackend, None] = None,
        first_replication: int = 0,
    ) -> BatchResult:
        """Run ``replications`` independent simulations of ``num_rounds`` each.

        ``policy_factory`` is called with the **global** replication index
        (``first_replication + i``) and must return a fresh policy every
        time.  Results are always ordered by replication index and are
        bit-identical across backends because each replication owns its
        spawned stream and policy.

        ``backend`` picks the executor (see :mod:`repro.sim.backends`):
        ``"serial"``, ``"thread"`` (the historical ``jobs > 1`` behaviour
        and the default — GIL-bound for the pure-Python round loop) or
        ``"process"`` for true multicore.  The process backend pickles the
        work, so the policy factory must be a module-level callable — this
        is validated eagerly with an error naming the factory instead of an
        opaque worker-time crash.  The built-in policies
        (:class:`~repro.core.policies.CombinatorialUCBPolicy`,
        :class:`~repro.core.policies.LLRPolicy`,
        :class:`~repro.core.policies.OraclePolicy`) are process-safe; only
        the *factory* needs to be importable.

        ``first_replication`` shifts the seed-stream window so a batch of
        one can reproduce replication ``i`` of a larger batch exactly (the
        sweep layer's per-replication work units).
        """
        if num_rounds <= 0:
            raise ValueError(f"num_rounds must be positive, got {num_rounds}")
        if replications <= 0:
            raise ValueError(f"replications must be positive, got {replications}")
        if jobs <= 0:
            raise ValueError(f"jobs must be positive, got {jobs}")
        if first_replication < 0:
            raise ValueError(
                f"first_replication must be non-negative, got {first_replication}"
            )
        if replications > 1 and self._channels.has_stateful_models:
            raise ValueError(
                "the channel state contains stateful models (e.g. "
                "Gilbert-Elliott); sharing them across replications would "
                "couple the runs, so batches require i.i.d. channel models"
            )
        executor = resolve_backend(
            backend, default="thread" if jobs > 1 else "serial"
        )
        children = child_seed_sequences(
            self._seed, replications, first=first_replication
        )
        indices = range(first_replication, first_replication + replications)
        obs = current_observer()
        with obs.span(
            "sim.batch", replications=replications, num_rounds=num_rounds
        ):
            # Observers are context-local; thread-pool workers start from a
            # fresh context, so capture the observer and the batch span here
            # and re-enter both inside the worker.  The process backend runs
            # its replications untraced (observers do not cross pickling
            # boundaries).
            parent_span = obs.current_span_id()
            if isinstance(executor, ProcessBackend):
                ensure_picklable(
                    policy_factory, f"the policy factory {policy_factory!r}"
                )
                payloads = [
                    (
                        self._graph,
                        self._channels,
                        self._timing,
                        self._optimal_value,
                        child,
                        policy_factory,
                        index,
                        num_rounds,
                    )
                    for child, index in zip(children, indices)
                ]
                results = executor.map(_run_replication_payload, payloads, jobs)
            else:

                def run_one(index: int) -> SimulationResult:
                    with obs.activate(parent_span):
                        with obs.span("sim.replication", replication=index):
                            policy = policy_factory(index)
                            simulator = Simulator(
                                self._graph,
                                self._channels,
                                timing=self._timing,
                                optimal_value=self._optimal_value,
                                rng=np.random.default_rng(
                                    children[index - first_replication]
                                ),
                            )
                            return simulator.run(policy, num_rounds)

                results = executor.map(run_one, list(indices), jobs)
        return BatchResult(policy_name=results[0].policy_name, results=results)


def _run_replication_payload(payload) -> SimulationResult:
    """Process-pool work unit: one replication, rebuilt from a pickled payload.

    Module-level (not a closure) so it can cross process boundaries under
    any multiprocessing start method.
    """
    (
        graph,
        channels,
        timing,
        optimal_value,
        child,
        policy_factory,
        index,
        num_rounds,
    ) = payload
    policy = policy_factory(index)
    simulator = Simulator(
        graph,
        channels,
        timing=timing,
        optimal_value=optimal_value,
        rng=np.random.default_rng(child),
    )
    return simulator.run(policy, num_rounds)
