"""Simulation engine: round-by-round execution of channel-access policies.

* :mod:`repro.sim.timing` -- the round structure of Fig. 2 / Table II and the
  effective-throughput factor ``theta = t_d / t_a``.
* :mod:`repro.sim.engine` -- the per-round simulator (Algorithm 2's outer loop).
* :mod:`repro.sim.batch` -- seed-streamed batch runner for ``R`` independent
  replications of one policy.
* :mod:`repro.sim.backends` -- pluggable serial / thread / process executors
  shared by batches and parameter sweeps.
* :mod:`repro.sim.periodic` -- periodic (stale-weight) update simulation of
  Section V-C.
* :mod:`repro.sim.dynamic` -- simulation under topology dynamics (churn,
  mobility, link flapping) threading :mod:`repro.dynamics` event schedules
  between learning rounds.
* :mod:`repro.sim.results` -- result containers.
* :mod:`repro.sim.metrics` -- small numeric helpers shared by the experiments.
"""

from repro.sim.timing import TimingConfig
from repro.sim.engine import Simulator
from repro.sim.backends import (
    BACKEND_NAMES,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    ensure_picklable,
    resolve_backend,
)
from repro.sim.batch import BatchResult, BatchSimulator, replication_rngs
from repro.sim.dynamic import (
    DynamicRoundRecord,
    DynamicRunResult,
    DynamicSimulator,
    EventBatchRecord,
)
from repro.sim.periodic import PeriodicSimulator, PeriodRecord, PeriodicResult
from repro.sim.results import RoundRecord, SimulationResult
from repro.sim.metrics import running_average, summarize_trace

__all__ = [
    "TimingConfig",
    "Simulator",
    "BACKEND_NAMES",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "ensure_picklable",
    "resolve_backend",
    "BatchResult",
    "BatchSimulator",
    "replication_rngs",
    "DynamicSimulator",
    "DynamicRunResult",
    "DynamicRoundRecord",
    "EventBatchRecord",
    "PeriodicSimulator",
    "PeriodRecord",
    "PeriodicResult",
    "RoundRecord",
    "SimulationResult",
    "running_average",
    "summarize_trace",
]
