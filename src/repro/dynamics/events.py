"""Topology events and deterministic event-schedule generators.

The paper's distributed PTAS is pitched as robust to network dynamics, but a
frozen topology can never exercise that claim.  This module defines the
vocabulary of topology changes a running scenario can experience:

* :class:`NodeArrival` / :class:`NodeDeparture` — churn: a user joins the
  deployment (possibly at a new position) or powers off;
* :class:`LinkFlap` — a conflict link is forced down (e.g. an obstruction
  appears between two users) or restored to the topology rule;
* :class:`MobilityStep` — a user moves to a new position on a
  random-waypoint walk, changing its unit-disk conflict edges.

An :class:`EventSchedule` is an immutable, JSON-serializable list of events
keyed by the learning round *before* which they apply.  Schedules are
produced by seeded generators (Poisson churn, periodic link flapping,
random-waypoint mobility, scripted traces) so the same spec always yields
the same event sequence — which is what lets the sweep layer content-hash
dynamic scenarios and dedup them in the results store.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Type

import numpy as np

from repro.graph.conflict_graph import ConflictGraph

__all__ = [
    "TopologyEvent",
    "NodeArrival",
    "NodeDeparture",
    "LinkFlap",
    "MobilityStep",
    "EventSchedule",
    "event_from_dict",
    "poisson_churn_schedule",
    "periodic_flap_schedule",
    "random_waypoint_schedule",
]


@dataclass(frozen=True)
class TopologyEvent:
    """Base class: something that changes the topology before a round.

    ``round_index`` is 1-based and names the learning round the change is
    visible in: all events of round ``t`` are applied before the round-``t``
    strategy decision.
    """

    round_index: int

    #: Serialization tag; set by each concrete subclass.
    type_name = "event"

    def _validate_common(self, path: str) -> None:
        if isinstance(self.round_index, bool) or not isinstance(self.round_index, int):
            raise ValueError(f"{path}.round_index: expected an integer, got {self.round_index!r}")
        if self.round_index < 1:
            raise ValueError(f"{path}.round_index: must be >= 1, got {self.round_index}")

    def validate(self, path: str = "event") -> None:
        """Raise ``ValueError`` (with ``path``) when the event is ill-formed."""
        self._validate_common(path)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (inverse of :func:`event_from_dict`)."""
        data: Dict[str, object] = {"type": self.type_name}
        for name, value in sorted(self.__dict__.items()):
            data[name] = value
        return data


@dataclass(frozen=True)
class NodeDeparture(TopologyEvent):
    """Node ``node`` leaves the network; its conflict edges disappear."""

    node: int = 0
    type_name = "node-departure"

    def validate(self, path: str = "event") -> None:
        self._validate_common(path)
        _check_node_field(self.node, f"{path}.node")


@dataclass(frozen=True)
class NodeArrival(TopologyEvent):
    """Node ``node`` (re)joins the network.

    On geometric topologies ``x``/``y`` give the arrival position (``None``
    keeps the last known one); combinatorial topologies restore the node's
    base conflict edges and ignore positions.
    """

    node: int = 0
    x: Optional[float] = None
    y: Optional[float] = None
    type_name = "node-arrival"

    def validate(self, path: str = "event") -> None:
        self._validate_common(path)
        _check_node_field(self.node, f"{path}.node")
        if (self.x is None) != (self.y is None):
            raise ValueError(f"{path}: give both x and y or neither, got x={self.x}, y={self.y}")
        for name, value in (("x", self.x), ("y", self.y)):
            if value is not None and (
                isinstance(value, bool) or not isinstance(value, (int, float))
            ):
                raise ValueError(f"{path}.{name}: expected a number, got {value!r}")


@dataclass(frozen=True)
class LinkFlap(TopologyEvent):
    """The conflict link ``(u, v)`` is forced down (``up=False``) or restored.

    Restoring removes the override: the link is present again exactly when
    the topology rule (unit-disk distance, or the base edge set) says so.
    """

    u: int = 0
    v: int = 1
    up: bool = False
    type_name = "link-flap"

    def validate(self, path: str = "event") -> None:
        self._validate_common(path)
        _check_node_field(self.u, f"{path}.u")
        _check_node_field(self.v, f"{path}.v")
        if self.u == self.v:
            raise ValueError(f"{path}: a link needs two distinct endpoints, got ({self.u}, {self.v})")
        if not isinstance(self.up, bool):
            raise ValueError(f"{path}.up: expected true/false, got {self.up!r}")


@dataclass(frozen=True)
class MobilityStep(TopologyEvent):
    """Node ``node`` moves to ``(x, y)``; its unit-disk edges are recomputed."""

    node: int = 0
    x: float = 0.0
    y: float = 0.0
    type_name = "mobility-step"

    def validate(self, path: str = "event") -> None:
        self._validate_common(path)
        _check_node_field(self.node, f"{path}.node")
        for name, value in (("x", self.x), ("y", self.y)):
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(f"{path}.{name}: expected a number, got {value!r}")


def _check_node_field(value, path: str) -> None:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"{path}: expected an integer node id, got {value!r}")
    if value < 0:
        raise ValueError(f"{path}: node ids are non-negative, got {value}")


EVENT_TYPES: Dict[str, Type[TopologyEvent]] = {
    cls.type_name: cls for cls in (NodeArrival, NodeDeparture, LinkFlap, MobilityStep)
}


def event_from_dict(data, path: str = "event") -> TopologyEvent:
    """Deserialize one event dict, raising ``ValueError`` with ``path``."""
    if not isinstance(data, Mapping):
        raise ValueError(f"{path}: expected a JSON object, got {type(data).__name__}")
    type_name = data.get("type")
    if type_name not in EVENT_TYPES:
        raise ValueError(
            f"{path}.type: unknown event type {type_name!r}; "
            f"choose one of {sorted(EVENT_TYPES)}"
        )
    cls = EVENT_TYPES[type_name]
    kwargs = {k: v for k, v in data.items() if k != "type"}
    allowed = set(cls(round_index=1).__dict__)
    unknown = sorted(set(kwargs) - allowed)
    if unknown:
        raise ValueError(
            f"{path}: unknown field(s) {unknown} for {type_name!r}; "
            f"allowed fields are {sorted(allowed)}"
        )
    try:
        event = cls(**kwargs)
    except TypeError as err:
        raise ValueError(f"{path}: {err}") from None
    event.validate(path)
    return event


class EventSchedule:
    """An immutable, validated sequence of topology events.

    Events are stored sorted by ``round_index`` (stable, so same-round
    events keep their given order — departures before arrivals matter when a
    trace recycles a node id within one round).
    """

    def __init__(self, events: Iterable[TopologyEvent]) -> None:
        events = list(events)
        for index, event in enumerate(events):
            if not isinstance(event, TopologyEvent):
                raise ValueError(
                    f"events[{index}]: expected a TopologyEvent, got {type(event).__name__}"
                )
            event.validate(f"events[{index}]")
        ordered = sorted(events, key=lambda event: event.round_index)
        self._events: Tuple[TopologyEvent, ...] = tuple(ordered)
        self._by_round: Dict[int, List[TopologyEvent]] = {}
        for event in self._events:
            self._by_round.setdefault(event.round_index, []).append(event)

    @property
    def events(self) -> Tuple[TopologyEvent, ...]:
        """All events, sorted by round."""
        return self._events

    @property
    def num_events(self) -> int:
        """Total number of events."""
        return len(self._events)

    @property
    def event_rounds(self) -> List[int]:
        """The rounds that have at least one event, sorted."""
        return sorted(self._by_round)

    @property
    def max_round(self) -> int:
        """Largest round index carrying an event (0 for an empty schedule)."""
        return self._events[-1].round_index if self._events else 0

    def events_for_round(self, round_index: int) -> List[TopologyEvent]:
        """The events applied just before round ``round_index``."""
        return list(self._by_round.get(round_index, ()))

    def to_dicts(self) -> List[Dict[str, object]]:
        """JSON-ready event list (inverse of :meth:`from_dicts`)."""
        return [event.to_dict() for event in self._events]

    @classmethod
    def from_dicts(cls, data, path: str = "events") -> "EventSchedule":
        """Deserialize an event list, raising ``ValueError`` with ``path``."""
        if not isinstance(data, Sequence) or isinstance(data, (str, bytes)):
            raise ValueError(f"{path}: expected a list of event objects, got {data!r}")
        return cls(event_from_dict(entry, f"{path}[{i}]") for i, entry in enumerate(data))

    def content_hash(self) -> str:
        """SHA-256 of the canonical JSON form (sorted keys, compact)."""
        canonical = json.dumps(
            self.to_dicts(), sort_keys=True, separators=(",", ":"), allow_nan=False
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def __eq__(self, other) -> bool:
        if not isinstance(other, EventSchedule):
            return NotImplemented
        return self._events == other._events

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"EventSchedule(num_events={self.num_events}, max_round={self.max_round})"


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------
def _deployment_side(graph: ConflictGraph) -> float:
    """Side length of the (square) area arrivals and waypoints are drawn in.

    Uses the bounding square of the initial deployment so generated
    positions stay in the same density regime as the seed topology.
    """
    positions = graph.positions
    if not positions:
        return 1.0
    extent = max(max(p.x for p in positions), max(p.y for p in positions))
    return max(float(extent), 1.0)


def poisson_churn_schedule(
    graph: ConflictGraph,
    num_rounds: int,
    rate: float,
    rng: np.random.Generator,
    arrival_bias: float = 0.5,
    min_active: int = 1,
) -> EventSchedule:
    """Poisson churn: nodes leave and rejoin at ``rate`` events per round.

    Every round draws ``Poisson(rate)`` churn events.  Each event is an
    arrival of a random departed node with probability ``arrival_bias``
    (when one exists) or a departure of a random active node (never
    dropping below ``min_active`` active nodes).  Rejoining nodes land at a
    fresh uniform position on geometric topologies and restore their base
    conflict edges on combinatorial ones.
    """
    if num_rounds <= 0:
        raise ValueError(f"num_rounds must be positive, got {num_rounds}")
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if not (0.0 <= arrival_bias <= 1.0):
        raise ValueError(f"arrival_bias must be in [0, 1], got {arrival_bias}")
    if min_active < 1:
        raise ValueError(f"min_active must be >= 1, got {min_active}")
    side = _deployment_side(graph)
    geometric = graph.positions is not None
    active = set(range(graph.num_nodes))
    departed: List[int] = []
    events: List[TopologyEvent] = []
    for round_index in range(1, num_rounds + 1):
        for _ in range(int(rng.poisson(rate))):
            can_depart = len(active) > min_active
            can_arrive = bool(departed)
            if not can_depart and not can_arrive:
                continue
            if can_arrive and (not can_depart or rng.random() < arrival_bias):
                node = departed.pop(int(rng.integers(0, len(departed))))
                if geometric:
                    x, y = (float(v) for v in rng.uniform(0.0, side, size=2))
                    events.append(NodeArrival(round_index=round_index, node=node, x=x, y=y))
                else:
                    events.append(NodeArrival(round_index=round_index, node=node))
                active.add(node)
            else:
                choices = sorted(active)
                node = choices[int(rng.integers(0, len(choices)))]
                events.append(NodeDeparture(round_index=round_index, node=node))
                active.discard(node)
                departed.append(node)
    return EventSchedule(events)


def periodic_flap_schedule(
    graph: ConflictGraph,
    num_rounds: int,
    period: int,
    flap_fraction: float,
    rng: np.random.Generator,
) -> EventSchedule:
    """Periodic link flapping: a fixed edge subset toggles every ``period`` rounds.

    ``max(1, round(flap_fraction * |E|))`` edges are chosen once (seeded);
    they go down at rounds ``period, 3*period, ...`` and come back up at
    rounds ``2*period, 4*period, ...``.
    """
    if num_rounds <= 0:
        raise ValueError(f"num_rounds must be positive, got {num_rounds}")
    if period < 1:
        raise ValueError(f"period must be >= 1, got {period}")
    if not (0.0 < flap_fraction <= 1.0):
        raise ValueError(f"flap_fraction must be in (0, 1], got {flap_fraction}")
    edges = sorted(graph.edges())
    if not edges:
        return EventSchedule(())
    count = max(1, int(round(flap_fraction * len(edges))))
    chosen_idx = rng.choice(len(edges), size=min(count, len(edges)), replace=False)
    chosen = [edges[int(i)] for i in sorted(chosen_idx)]
    events: List[TopologyEvent] = []
    up = False  # first toggle takes the links down
    for round_index in range(period, num_rounds + 1, period):
        for u, v in chosen:
            events.append(LinkFlap(round_index=round_index, u=u, v=v, up=up))
        up = not up
    return EventSchedule(events)


def random_waypoint_schedule(
    graph: ConflictGraph,
    num_rounds: int,
    speed: float,
    step_every: int,
    rng: np.random.Generator,
) -> EventSchedule:
    """Random-waypoint mobility on the deployment square.

    Every node walks toward a uniformly drawn waypoint at ``speed`` distance
    units per round; positions are sampled into :class:`MobilityStep` events
    every ``step_every`` rounds.  When a node reaches its waypoint it draws
    the next one.  Requires a geometric topology (positions).
    """
    if num_rounds <= 0:
        raise ValueError(f"num_rounds must be positive, got {num_rounds}")
    if speed <= 0:
        raise ValueError(f"speed must be positive, got {speed}")
    if step_every < 1:
        raise ValueError(f"step_every must be >= 1, got {step_every}")
    positions = graph.positions
    if positions is None:
        raise ValueError(
            "random-waypoint mobility needs node positions; the topology "
            "must be geometric (random / connected-random / linear / grid)"
        )
    side = _deployment_side(graph)
    coords = np.array([[p.x, p.y] for p in positions], dtype=float)
    waypoints = rng.uniform(0.0, side, size=coords.shape)
    events: List[TopologyEvent] = []
    for round_index in range(step_every, num_rounds + 1, step_every):
        budget = speed * step_every
        for node in range(coords.shape[0]):
            remaining = budget
            while remaining > 0.0:
                delta = waypoints[node] - coords[node]
                distance = float(np.hypot(delta[0], delta[1]))
                if distance <= remaining:
                    coords[node] = waypoints[node]
                    remaining -= distance
                    waypoints[node] = rng.uniform(0.0, side, size=2)
                    if distance == 0.0:
                        break
                else:
                    coords[node] += delta * (remaining / distance)
                    remaining = 0.0
            events.append(
                MobilityStep(
                    round_index=round_index,
                    node=node,
                    x=float(coords[node, 0]),
                    y=float(coords[node, 1]),
                )
            )
    return EventSchedule(events)
