"""The dynamic strategy-decision engine.

One :class:`DynamicStrategyEngine` owns everything a scenario under network
dynamics shares per replication:

* the :class:`~repro.dynamics.graph.DynamicTopology` (``G``) and the
  in-place maintained :class:`~repro.dynamics.graph.DynamicExtendedGraph`
  (``H``),
* one :class:`~repro.dynamics.graph.IncrementalNeighborhoods` cache per
  protocol radius (``r``, ``r+1``, ``2r+1``, ``3r+2``), and
* a :class:`~repro.distributed.ptas.DistributedRobustPTAS` built over the
  *live* adjacency and caches, so after an event is applied incrementally
  the protocol immediately runs on the new topology — no rebuild.

Policies get their strategy decisions through :meth:`solver`, which returns
a :class:`DynamicStrategySolver`: a drop-in
:class:`~repro.mwis.base.MWISSolver` that masks departed nodes out of the
weight vector, runs Algorithm 3 on the current topology and filters the
winners to active nodes.  Applying events *invalidates* every issued solver
(the previous-strategy memory is cleared), which forces the next decision
to re-broadcast all weights and fully re-converge — exactly the re-start
the paper's protocol would perform after a topology change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set

import numpy as np

from repro.distributed.ptas import DistributedRobustPTAS, ProtocolResult
from repro.dynamics.events import TopologyEvent
from repro.dynamics.graph import (
    DynamicExtendedGraph,
    DynamicTopology,
    GraphDelta,
    IncrementalNeighborhoods,
)
from repro.graph.conflict_graph import ConflictGraph
from repro.mwis.base import IndependentSet, MWISSolver

__all__ = ["EventReport", "DynamicStrategySolver", "DynamicStrategyEngine"]


@dataclass(frozen=True)
class EventReport:
    """What one batch of topology events changed."""

    num_events: int
    #: Extended-graph vertices incident to a changed edge.
    touched_vertices: int
    #: Vertices whose r-hop neighbourhoods were recomputed (max over radii).
    recomputed_neighborhoods: int
    active_nodes: int
    num_edges: int

    @property
    def changed_topology(self) -> bool:
        """``True`` when at least one conflict edge changed."""
        return self.touched_vertices > 0


class DynamicStrategySolver(MWISSolver):
    """MWIS solver running Algorithm 3 on the engine's live topology.

    Satisfies the generic solver interface the learning policies use, so
    :class:`~repro.core.policies.CombinatorialUCBPolicy` /
    :class:`~repro.core.policies.LLRPolicy` work under dynamics unchanged.
    The ``adjacency`` argument of :meth:`solve` is only size-checked — the
    engine's live adjacency is authoritative (a policy's construction-time
    snapshot goes stale the moment the topology changes).
    """

    def __init__(self, engine: "DynamicStrategyEngine") -> None:
        self._engine = engine
        self._previous_strategy: Optional[Set[int]] = None
        self._last_result: Optional[ProtocolResult] = None
        #: ``True`` while the next decision is a forced full re-convergence.
        self._invalidated = True
        self._last_reconvergence = False
        #: Total protocol decisions run (lets callers detect rounds in which
        #: a policy decided without invoking the protocol at all).
        self.num_solves = 0

    @property
    def last_result(self) -> Optional[ProtocolResult]:
        """Full protocol result of the most recent decision."""
        return self._last_result

    @property
    def was_reconvergence(self) -> bool:
        """Whether the latest decision followed an invalidation."""
        return self._last_reconvergence

    def invalidate(self) -> None:
        """Drop the previous-strategy memory: the topology changed.

        The next :meth:`solve` broadcasts every weight during the WB phase
        (first-round behaviour) and re-converges from scratch.
        """
        self._previous_strategy = None
        self._invalidated = True

    def reset(self) -> None:
        """Policy-facing reset (start of a new run)."""
        self.invalidate()
        self._last_result = None

    def solve(self, adjacency: Sequence[Set[int]], weights: Sequence[float]) -> IndependentSet:
        engine = self._engine
        if len(adjacency) != engine.extended.num_vertices:
            raise ValueError(
                f"adjacency has {len(adjacency)} vertices but the engine was "
                f"built for {engine.extended.num_vertices}"
            )
        active = engine.extended.active_vertices()
        masked = np.asarray(weights, dtype=float).copy()
        if len(active) < masked.size:
            inactive = np.ones(masked.size, dtype=bool)
            inactive[sorted(active)] = False
            masked[inactive] = 0.0
        result = engine.protocol.run(
            masked, broadcasting_vertices=self._previous_strategy
        )
        winners = set(result.independent_set.vertices) & active
        self._last_result = result
        self._last_reconvergence = self._invalidated
        self._invalidated = False
        self.num_solves += 1
        self._previous_strategy = winners
        return IndependentSet.from_iterable(winners, weights)


class DynamicStrategyEngine:
    """Shared dynamic-topology state of one simulation run.

    Parameters
    ----------
    base_graph:
        The initial conflict graph (the fixed node universe).
    r:
        PTAS radius of the strategy decision.
    local_solver:
        Optional solver for the per-leader local MWIS instances (``None`` =
        exact enumeration; pass :class:`~repro.mwis.greedy.GreedyMWISSolver`
        for large extended graphs, mirroring ``PolicySpec.solver``).
    max_mini_rounds:
        Optional mini-round budget ``D`` per decision.
    """

    def __init__(
        self,
        base_graph: ConflictGraph,
        r: int = 2,
        local_solver: Optional[MWISSolver] = None,
        max_mini_rounds: Optional[int] = None,
    ) -> None:
        self.topology = DynamicTopology(base_graph)
        self.extended = DynamicExtendedGraph(self.topology)
        adjacency = self.extended.adjacency
        self._r = r
        radii = sorted({r, r + 1, 2 * r + 1, 3 * r + 2})
        self._caches = {
            radius: IncrementalNeighborhoods(adjacency, radius) for radius in radii
        }
        self.protocol = DistributedRobustPTAS(
            adjacency,
            r=r,
            max_mini_rounds=max_mini_rounds,
            local_solver=local_solver,
            master_of=self.extended.masters(),
            precomputed_neighborhoods={
                radius: cache.hoods for radius, cache in self._caches.items()
            },
        )
        self._solvers: List[DynamicStrategySolver] = []
        self.num_event_batches = 0
        self.num_events_applied = 0

    @property
    def r(self) -> int:
        """The PTAS radius."""
        return self._r

    @property
    def solvers(self) -> "tuple[DynamicStrategySolver, ...]":
        """Every strategy solver issued by this engine."""
        return tuple(self._solvers)

    def solver(self) -> DynamicStrategySolver:
        """A fresh strategy-decision solver bound to this engine.

        Every policy of a run gets its own solver (its own previous-strategy
        memory); all of them are invalidated together when events apply.
        """
        solver = DynamicStrategySolver(self)
        self._solvers.append(solver)
        return solver

    def apply_events(self, events: Iterable[TopologyEvent]) -> EventReport:
        """Apply an event batch incrementally and invalidate all solvers."""
        events = list(events)
        merged = GraphDelta()
        for event in events:
            merged = merged.merge(self.topology.apply(event))
        extended_delta = self.extended.apply_delta(merged)
        touched = extended_delta.touched_vertices
        recomputed = 0
        if touched:
            for cache in self._caches.values():
                recomputed = max(recomputed, len(cache.update(touched)))
        for solver in self._solvers:
            solver.invalidate()
        self.num_event_batches += 1
        self.num_events_applied += len(events)
        return EventReport(
            num_events=len(events),
            touched_vertices=len(touched),
            recomputed_neighborhoods=recomputed,
            active_nodes=self.topology.num_active,
            num_edges=self.topology.num_edges,
        )

    def verify_rebuild(self) -> None:
        """Assert every incremental structure matches a fresh rebuild."""
        self.extended.verify_rebuild()
        for cache in self._caches.values():
            cache.verify_rebuild()
