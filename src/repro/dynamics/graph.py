"""Incrementally-maintained dynamic conflict graphs.

The static layers build :class:`~repro.graph.conflict_graph.ConflictGraph`
and :class:`~repro.graph.extended.ExtendedConflictGraph` once per topology.
Under churn and mobility the topology changes every few rounds, and a full
rebuild per event would recompute every adjacency set and every r-hop
neighbourhood.  This module maintains the same structures *incrementally*:

* :class:`DynamicTopology` — the conflict graph ``G`` over a fixed node
  universe with an active-node set, per-node positions and link overrides;
  applying a :class:`~repro.dynamics.events.TopologyEvent` yields the exact
  edge delta.
* :class:`DynamicExtendedGraph` — the extended graph ``H`` whose adjacency
  sets are patched in place from edge deltas of ``G`` (master cliques are
  static; only same-channel conflict edges change).
* :class:`IncrementalNeighborhoods` — an r-hop neighbourhood cache that
  recomputes only the vertices whose r-ball could have changed (those
  within ``r`` hops of a touched endpoint in the old *or* new graph).

Everything obeys a *rebuild-equality contract*: after any event sequence,
the incremental state is bit-identical to a fresh build from the current
topology (asserted by :meth:`DynamicExtendedGraph.verify_rebuild` and the
property tests in ``tests/dynamics/``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.dynamics.events import (
    EventSchedule,
    LinkFlap,
    MobilityStep,
    NodeArrival,
    NodeDeparture,
    TopologyEvent,
)
from repro.graph.conflict_graph import ConflictGraph
from repro.graph.extended import ExtendedConflictGraph
from repro.graph.geometry import Point
from repro.graph.neighborhoods import r_hop_neighborhood
from repro.graph.unit_disk import DEFAULT_CONFLICT_RADIUS

__all__ = [
    "GraphDelta",
    "ExtendedDelta",
    "DynamicTopology",
    "DynamicExtendedGraph",
    "IncrementalNeighborhoods",
    "replay_schedule",
    "index_frame",
]


def _edge(u: int, v: int) -> Tuple[int, int]:
    return (u, v) if u < v else (v, u)


@dataclass(frozen=True)
class GraphDelta:
    """The exact change one event made to the conflict graph ``G``."""

    added_edges: FrozenSet[Tuple[int, int]] = frozenset()
    removed_edges: FrozenSet[Tuple[int, int]] = frozenset()

    @property
    def touched_nodes(self) -> Set[int]:
        """Endpoints of every changed edge."""
        nodes: Set[int] = set()
        for u, v in self.added_edges | self.removed_edges:
            nodes.add(u)
            nodes.add(v)
        return nodes

    @property
    def is_empty(self) -> bool:
        """``True`` when the event changed no edges."""
        return not self.added_edges and not self.removed_edges

    def merge(self, other: "GraphDelta") -> "GraphDelta":
        """Combine two sequential deltas (an add then a remove cancels)."""
        added = (self.added_edges - other.removed_edges) | other.added_edges
        removed = (self.removed_edges - other.added_edges) | other.removed_edges
        return GraphDelta(added_edges=frozenset(added), removed_edges=frozenset(removed))


class DynamicTopology:
    """The conflict graph ``G`` under churn, mobility and link flapping.

    The node universe (``N`` users, ``M`` channels) is fixed for the
    lifetime of a scenario; dynamics change which nodes are *active*, where
    they are, and which conflict links exist.  An edge ``(u, v)`` is present
    exactly when

    * both endpoints are active,
    * the link is not forced down by an un-restored :class:`LinkFlap`, and
    * the topology rule holds: on geometric topologies the unit-disk test
      on *current* positions, on combinatorial ones membership in the base
      edge set.
    """

    def __init__(
        self, base: ConflictGraph, radius: float = DEFAULT_CONFLICT_RADIUS
    ) -> None:
        if radius <= 0:
            raise ValueError(f"radius must be positive, got {radius}")
        self._num_nodes = base.num_nodes
        self._num_channels = base.num_channels
        self._radius = float(radius)
        positions = base.positions
        self._positions: Optional[List[Point]] = positions
        self._base_edges: Set[Tuple[int, int]] = {_edge(u, v) for u, v in base.edges()}
        self._active: List[bool] = [True] * self._num_nodes
        self._links_down: Set[Tuple[int, int]] = set()
        self._adjacency: List[Set[int]] = base.adjacency_sets()

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Size of the fixed node universe ``N``."""
        return self._num_nodes

    @property
    def num_channels(self) -> int:
        """Number of channels ``M``."""
        return self._num_channels

    @property
    def is_geometric(self) -> bool:
        """``True`` when edges follow the unit-disk rule on positions."""
        return self._positions is not None

    def is_active(self, node: int) -> bool:
        """Whether ``node`` is currently part of the network."""
        self._check_node(node)
        return self._active[node]

    def active_nodes(self) -> List[int]:
        """Sorted ids of the currently active nodes."""
        return [node for node in range(self._num_nodes) if self._active[node]]

    @property
    def num_active(self) -> int:
        """Number of currently active nodes."""
        return sum(self._active)

    @property
    def num_edges(self) -> int:
        """Number of current conflict edges."""
        return sum(len(n) for n in self._adjacency) // 2

    def position_of(self, node: int) -> Optional[Point]:
        """Current position of ``node`` (``None`` on combinatorial graphs)."""
        self._check_node(node)
        return self._positions[node] if self._positions is not None else None

    def adjacency_sets(self) -> List[Set[int]]:
        """A copy of the current adjacency structure of ``G``."""
        return [set(neighbors) for neighbors in self._adjacency]

    def edges(self) -> List[Tuple[int, int]]:
        """The current edges as sorted ``(u, v)`` pairs with ``u < v``."""
        return sorted(
            (u, v)
            for u, neighbors in enumerate(self._adjacency)
            for v in neighbors
            if u < v
        )

    def to_conflict_graph(self) -> ConflictGraph:
        """A fresh :class:`ConflictGraph` snapshot of the current state.

        The snapshot keeps the full node universe (departed nodes appear as
        isolated vertices), which is what the rebuild-equality contract of
        :class:`DynamicExtendedGraph` compares against.
        """
        return ConflictGraph(
            self._num_nodes,
            self.edges(),
            self._num_channels,
            positions=self._positions,
        )

    def _check_node(self, node: int) -> None:
        if not (0 <= node < self._num_nodes):
            raise ValueError(f"node {node} out of range [0, {self._num_nodes})")

    # ------------------------------------------------------------------
    # The edge rule
    # ------------------------------------------------------------------
    def _rule_connected(self, u: int, v: int) -> bool:
        """Whether the topology rule (before overrides) links ``u`` and ``v``."""
        if self._positions is not None:
            pu, pv = self._positions[u], self._positions[v]
            return (pu.x - pv.x) ** 2 + (pu.y - pv.y) ** 2 <= self._radius**2
        return _edge(u, v) in self._base_edges

    def _connected(self, u: int, v: int) -> bool:
        if u == v or not (self._active[u] and self._active[v]):
            return False
        if _edge(u, v) in self._links_down:
            return False
        return self._rule_connected(u, v)

    def _recompute_incident(self, node: int) -> GraphDelta:
        """Re-evaluate every edge incident to ``node`` against the rule."""
        old = self._adjacency[node]
        new = {
            other
            for other in range(self._num_nodes)
            if self._connected(node, other)
        }
        added = {_edge(node, other) for other in new - old}
        removed = {_edge(node, other) for other in old - new}
        for other in old - new:
            self._adjacency[other].discard(node)
        for other in new - old:
            self._adjacency[other].add(node)
        self._adjacency[node] = new
        return GraphDelta(added_edges=frozenset(added), removed_edges=frozenset(removed))

    # ------------------------------------------------------------------
    # Event application
    # ------------------------------------------------------------------
    def apply(self, event: TopologyEvent) -> GraphDelta:
        """Apply one event and return the exact edge delta it caused."""
        if isinstance(event, NodeDeparture):
            self._check_node(event.node)
            if not self._active[event.node]:
                raise ValueError(f"node {event.node} is already departed")
            self._active[event.node] = False
            return self._recompute_incident(event.node)
        if isinstance(event, NodeArrival):
            self._check_node(event.node)
            if self._active[event.node]:
                raise ValueError(f"node {event.node} is already active")
            if event.x is not None:
                if self._positions is None:
                    raise ValueError(
                        f"arrival of node {event.node} carries a position but the "
                        "topology is combinatorial (no node positions)"
                    )
                self._positions[event.node] = Point(float(event.x), float(event.y))
            self._active[event.node] = True
            return self._recompute_incident(event.node)
        if isinstance(event, MobilityStep):
            self._check_node(event.node)
            if self._positions is None:
                raise ValueError(
                    "mobility events need a geometric topology (node positions)"
                )
            if not self._active[event.node]:
                # A departed node can move silently; no edges change until
                # it rejoins.
                self._positions[event.node] = Point(float(event.x), float(event.y))
                return GraphDelta()
            self._positions[event.node] = Point(float(event.x), float(event.y))
            return self._recompute_incident(event.node)
        if isinstance(event, LinkFlap):
            self._check_node(event.u)
            self._check_node(event.v)
            key = _edge(event.u, event.v)
            if event.up:
                self._links_down.discard(key)
            else:
                self._links_down.add(key)
            present_now = self._connected(event.u, event.v)
            present_before = key[1] in self._adjacency[key[0]]
            if present_now == present_before:
                return GraphDelta()
            if present_now:
                self._adjacency[key[0]].add(key[1])
                self._adjacency[key[1]].add(key[0])
                return GraphDelta(added_edges=frozenset({key}))
            self._adjacency[key[0]].discard(key[1])
            self._adjacency[key[1]].discard(key[0])
            return GraphDelta(removed_edges=frozenset({key}))
        raise ValueError(f"unknown topology event {type(event).__name__}")

    def apply_all(self, events: Iterable[TopologyEvent]) -> GraphDelta:
        """Apply a batch of events, returning the merged delta."""
        merged = GraphDelta()
        for event in events:
            merged = merged.merge(self.apply(event))
        return merged


class IncrementalNeighborhoods:
    """An r-hop neighbourhood cache patched from edge deltas.

    The cache shares its adjacency *by reference* with the caller (the
    dynamic extended graph); after the adjacency has been mutated,
    :meth:`update` recomputes only the vertices whose ``radius``-ball could
    have changed.  A vertex ``w``'s ball changes only when some endpoint of
    a changed edge lies within ``radius`` hops of ``w`` in the old or new
    graph — by symmetry exactly the vertices of the touched endpoints' old
    and new balls.
    """

    def __init__(self, adjacency: List[Set[int]], radius: int) -> None:
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        self._adjacency = adjacency
        self._radius = radius
        self._hoods: List[Set[int]] = [
            r_hop_neighborhood(adjacency, vertex, radius)
            for vertex in range(len(adjacency))
        ]

    @property
    def radius(self) -> int:
        """The cached hop radius."""
        return self._radius

    @property
    def hoods(self) -> List[Set[int]]:
        """The live per-vertex neighbourhood list (mutated in place)."""
        return self._hoods

    def update(self, touched_vertices: Iterable[int]) -> Set[int]:
        """Refresh the cache after the shared adjacency changed.

        ``touched_vertices`` are the endpoints of every added/removed edge.
        Returns the set of vertices whose neighbourhood was recomputed.
        """
        affected: Set[int] = set()
        for vertex in touched_vertices:
            # Old ball (d_old(v, u) <= r  <=>  u in old hood of v).
            affected |= self._hoods[vertex]
            # New ball against the already-mutated adjacency.
            affected |= r_hop_neighborhood(self._adjacency, vertex, self._radius)
        for vertex in affected:
            self._hoods[vertex] = r_hop_neighborhood(
                self._adjacency, vertex, self._radius
            )
        return affected

    def verify_rebuild(self) -> None:
        """Assert the cache equals a from-scratch recomputation."""
        for vertex in range(len(self._adjacency)):
            fresh = r_hop_neighborhood(self._adjacency, vertex, self._radius)
            if fresh != self._hoods[vertex]:
                raise AssertionError(
                    f"incremental {self._radius}-hop neighbourhood of vertex "
                    f"{vertex} diverged from a fresh rebuild"
                )


@dataclass
class ExtendedDelta:
    """The change one ``G``-delta induced on the extended graph ``H``."""

    added_edges: Set[Tuple[int, int]] = field(default_factory=set)
    removed_edges: Set[Tuple[int, int]] = field(default_factory=set)

    @property
    def touched_vertices(self) -> Set[int]:
        """Endpoints of every changed ``H`` edge."""
        vertices: Set[int] = set()
        for u, v in self.added_edges | self.removed_edges:
            vertices.add(u)
            vertices.add(v)
        return vertices


class DynamicExtendedGraph:
    """The extended conflict graph ``H`` maintained from ``G``-edge deltas.

    Matches ``ExtendedConflictGraph(topology.to_conflict_graph())`` at all
    times: master cliques exist for every node of the universe (active or
    not) and same-channel edges mirror the current conflict edges of ``G``.
    The adjacency list is mutated *in place*, so protocol engines holding a
    reference (:class:`~repro.distributed.ptas.DistributedRobustPTAS`, the
    message network) always see the current topology.
    """

    def __init__(self, topology: DynamicTopology) -> None:
        self._topology = topology
        self._m = topology.num_channels
        self._num_vertices = topology.num_nodes * self._m
        self._adjacency: List[Set[int]] = [set() for _ in range(self._num_vertices)]
        for node in range(topology.num_nodes):
            base = node * self._m
            for a in range(self._m):
                for b in range(a + 1, self._m):
                    self._adjacency[base + a].add(base + b)
                    self._adjacency[base + b].add(base + a)
        for u, v in topology.edges():
            self._set_conflict_edges(u, v, present=True)

    def _set_conflict_edges(self, i: int, j: int, present: bool) -> List[Tuple[int, int]]:
        changed = []
        for channel in range(self._m):
            u = i * self._m + channel
            v = j * self._m + channel
            if present:
                self._adjacency[u].add(v)
                self._adjacency[v].add(u)
            else:
                self._adjacency[u].discard(v)
                self._adjacency[v].discard(u)
            changed.append(_edge(u, v))
        return changed

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def topology(self) -> DynamicTopology:
        """The dynamic conflict graph ``G`` this ``H`` mirrors."""
        return self._topology

    @property
    def num_vertices(self) -> int:
        """Number of virtual vertices ``K = N * M``."""
        return self._num_vertices

    @property
    def num_channels(self) -> int:
        """Number of channels ``M``."""
        return self._m

    @property
    def adjacency(self) -> List[Set[int]]:
        """The live adjacency sets of ``H`` (shared, mutated in place)."""
        return self._adjacency

    def master_of(self, vertex: int) -> int:
        """Master node id of a virtual vertex (static under dynamics)."""
        if not (0 <= vertex < self._num_vertices):
            raise ValueError(f"vertex {vertex} out of range [0, {self._num_vertices})")
        return vertex // self._m

    def masters(self) -> List[int]:
        """The per-vertex master assignment."""
        return [vertex // self._m for vertex in range(self._num_vertices)]

    def active_vertices(self) -> Set[int]:
        """Vertices whose master node is currently active."""
        active: Set[int] = set()
        for node in self._topology.active_nodes():
            base = node * self._m
            active.update(range(base, base + self._m))
        return active

    def is_independent(self, vertices: Iterable[int]) -> bool:
        """Independence test against the *current* adjacency of ``H``."""
        selected = set(vertices)
        for vertex in selected:
            if self._adjacency[vertex] & selected:
                return False
        return True

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def apply_delta(self, delta: GraphDelta) -> ExtendedDelta:
        """Mirror a ``G``-edge delta into ``H`` (same-channel edges only)."""
        result = ExtendedDelta()
        for i, j in delta.removed_edges:
            result.removed_edges.update(self._set_conflict_edges(i, j, present=False))
        for i, j in delta.added_edges:
            result.added_edges.update(self._set_conflict_edges(i, j, present=True))
        return result

    def rebuild_reference(self) -> List[Set[int]]:
        """Adjacency of a from-scratch ``H`` build of the current topology."""
        return ExtendedConflictGraph(self._topology.to_conflict_graph()).adjacency_sets()

    def verify_rebuild(self) -> None:
        """Assert the incremental ``H`` equals a fresh full rebuild."""
        reference = self.rebuild_reference()
        if reference != self._adjacency:
            diverged = [
                vertex
                for vertex in range(self._num_vertices)
                if reference[vertex] != self._adjacency[vertex]
            ]
            raise AssertionError(
                f"incremental extended graph diverged from a fresh rebuild at "
                f"vertices {diverged[:10]}{'...' if len(diverged) > 10 else ''}"
            )


def replay_schedule(
    base: ConflictGraph, schedule: EventSchedule
) -> DynamicTopology:
    """Apply a whole schedule to a fresh topology (testing convenience)."""
    topology = DynamicTopology(base)
    for event in schedule:
        topology.apply(event)
    return topology


def index_frame(num_nodes: int, num_channels: int) -> ExtendedConflictGraph:
    """The static arm-index frame policies use under dynamics.

    An :class:`ExtendedConflictGraph` over an *edgeless* conflict graph:
    the vertex <-> (node, channel) mapping and the one-channel-per-node
    master cliques — the only structure that never changes under dynamics.
    Conflict edges are deliberately absent, because a strategy chosen on the
    current topology may be perfectly feasible there while violating the
    *initial* conflict edges (a node that rejoined somewhere else); the
    simulator validates feasibility against the live graph instead.
    """
    return ExtendedConflictGraph(ConflictGraph(num_nodes, (), num_channels))
