"""Dynamic-topology subsystem: churn, mobility and link flapping.

* :mod:`repro.dynamics.events` -- the topology-event model
  (:class:`NodeArrival`, :class:`NodeDeparture`, :class:`LinkFlap`,
  :class:`MobilityStep`), the immutable :class:`EventSchedule`, and the
  deterministic seeded generators (Poisson churn, periodic flapping,
  random-waypoint mobility).
* :mod:`repro.dynamics.graph` -- incremental maintenance of the conflict
  graph ``G``, the extended conflict graph ``H`` and the r-hop
  neighbourhood caches, with a rebuild-equality contract against full
  reconstruction.
* :mod:`repro.dynamics.engine` -- the per-run
  :class:`DynamicStrategyEngine` wiring the live structures into the
  distributed robust PTAS, and the :class:`DynamicStrategySolver` the
  learning policies plug in.

The simulation loop lives in :mod:`repro.sim.dynamic`; the declarative
entry point is the ``dynamics`` node of
:class:`~repro.spec.scenario.ScenarioSpec` (see ``docs/dynamics.md``).
"""

from repro.dynamics.engine import (
    DynamicStrategyEngine,
    DynamicStrategySolver,
    EventReport,
)
from repro.dynamics.events import (
    EventSchedule,
    LinkFlap,
    MobilityStep,
    NodeArrival,
    NodeDeparture,
    TopologyEvent,
    event_from_dict,
    periodic_flap_schedule,
    poisson_churn_schedule,
    random_waypoint_schedule,
)
from repro.dynamics.graph import (
    DynamicExtendedGraph,
    DynamicTopology,
    ExtendedDelta,
    GraphDelta,
    IncrementalNeighborhoods,
    index_frame,
    replay_schedule,
)

__all__ = [
    "TopologyEvent",
    "NodeArrival",
    "NodeDeparture",
    "LinkFlap",
    "MobilityStep",
    "EventSchedule",
    "event_from_dict",
    "poisson_churn_schedule",
    "periodic_flap_schedule",
    "random_waypoint_schedule",
    "GraphDelta",
    "ExtendedDelta",
    "DynamicTopology",
    "DynamicExtendedGraph",
    "IncrementalNeighborhoods",
    "replay_schedule",
    "index_frame",
    "DynamicStrategyEngine",
    "DynamicStrategySolver",
    "EventReport",
]
