#!/usr/bin/env python3
"""Periodic-update study (the Fig. 8 scenario).

Shows the trade-off at the heart of Section V-C: updating the weights (and
re-running the distributed strategy decision) every slot wastes half of every
round on control traffic, while updating once every ``y`` slots pushes the
effective throughput towards the ideal value with negligible loss in
estimation accuracy.  The paper's policy is compared with LLR for every
period length.

Run:  python examples/periodic_updates.py [--paper]

``--paper`` uses the full Section V-C parameters (100 users, 10 channels,
1000 updates per period length) and takes correspondingly longer.
"""

from __future__ import annotations

import argparse

from repro.experiments import Fig8Config, format_fig8, run_fig8


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--paper",
        action="store_true",
        help="run the exact paper-scale configuration (much slower)",
    )
    args = parser.parse_args()

    if args.paper:
        config = Fig8Config.from_scenario("fig8-paper")
    else:
        config = Fig8Config(
            num_nodes=20, num_channels=4, periods=(1, 5, 10, 20), num_periods=100, r=1
        )

    print(
        f"Running the Fig. 8 periodic-update study: {config.num_nodes} users, "
        f"{config.num_channels} channels, periods {config.periods}, "
        f"{config.num_periods} updates each ..."
    )
    result = run_fig8(config)
    print()
    print(format_fig8(result))
    print()
    print("Observations to compare with the paper:")
    for period in config.periods:
        efficiency = result.period_efficiency[period]
        actual = result.final_actual(period, "Algorithm2")
        print(
            f"  y = {period:>2}: efficiency {efficiency:.3f}, "
            f"Algorithm2 actual throughput {actual:.1f} kbps, "
            f"estimation gap {result.estimation_gap(period, 'Algorithm2'):.2%} "
            f"(LLR gap {result.estimation_gap(period, 'LLR'):.2%})"
        )


if __name__ == "__main__":
    main()
