#!/usr/bin/env python3
"""Convergence of the distributed strategy decision (the Fig. 6 scenario).

For several random networks this script runs one full strategy decision
(Algorithm 3) and prints the cumulative Winner weight after every mini-round,
plus the Fig. 5 linear worst case where only one LocalLeader can be elected
per mini-round.

Run:  python examples/convergence_study.py [--paper]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.distributed import DistributedRobustPTAS
from repro.experiments import Fig6Config, format_fig6, run_fig6
from repro.graph import ExtendedConflictGraph, linear_network


def linear_worst_case(num_nodes: int = 20) -> None:
    """The Fig. 5 pathology: decreasing weights along a line."""
    graph = linear_network(num_nodes, 2, spacing=1.0, radius=1.0)
    extended = ExtendedConflictGraph(graph)
    weights = np.linspace(extended.num_vertices, 1.0, extended.num_vertices)
    protocol = DistributedRobustPTAS(extended.adjacency_sets(), r=1)
    result = protocol.run(weights)
    print(
        f"Linear worst case ({num_nodes} nodes): {result.num_mini_rounds} mini-rounds "
        "to mark every vertex (random networks above needed only a handful)."
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--paper",
        action="store_true",
        help="use the exact Fig. 6 network sizes (50/100/200 users x 5/10 channels)",
    )
    args = parser.parse_args()

    config = Fig6Config.from_scenario("fig6-paper") if args.paper else Fig6Config(
        network_sizes=((30, 5), (60, 5), (30, 10)), r=2, max_mini_rounds=10
    )
    print("Running the Fig. 6 convergence study ...")
    result = run_fig6(config)
    print()
    print(format_fig6(result))
    print()
    linear_worst_case()


if __name__ == "__main__":
    main()
