#!/usr/bin/env python3
"""Extension study: channel access when channels are NOT i.i.d.

The paper's analysis assumes i.i.d. channel gains and leaves Markovian /
adversarial channels and strong (dynamic-comparator) regret as future work
(Section VII).  This example explores that direction with the extension
modules of this library:

* Gilbert-Elliott (two-state Markov) channels whose good/bad statistics also
  flip half-way through the run (an abrupt non-stationarity);
* the paper's stationary combinatorial-UCB policy vs. the sliding-window
  variant (`repro.core.nonstationary.SlidingWindowUCBPolicy`);
* the dynamic oracle as the strong-regret comparator.

Run:  python examples/nonstationary_channels.py
"""

from __future__ import annotations

import numpy as np

from repro.core.nonstationary import DynamicOraclePolicy, SlidingWindowUCBPolicy
from repro.core.policies import CombinatorialUCBPolicy
from repro.experiments.reporting import render_table
from repro.graph.extended import ExtendedConflictGraph
from repro.graph.topology import connected_random_network
from repro.mwis.exact import ExactMWISSolver

NUM_USERS = 8
NUM_CHANNELS = 3
HORIZON = 600
FLIP_AT = 300
SEED = 11


def build_mean_matrices(rng):
    """Two mean matrices: before and after the half-way flip."""
    before = rng.choice([150.0, 450.0, 900.0, 1350.0], size=(NUM_USERS, NUM_CHANNELS))
    # After the flip the best and worst channels swap roles per user.
    after = before[:, ::-1].copy()
    return before, after


def run_policy(policy, extended, before, after, rng):
    """Drive a policy over the drifting environment; return reward traces."""
    rewards = np.zeros(HORIZON)
    for t in range(1, HORIZON + 1):
        means = before if t <= FLIP_AT else after
        strategy = policy.select_strategy(t)
        observations = {}
        reward = 0.0
        for node, channel in strategy:
            value = max(0.0, rng.normal(means[node, channel], 0.05 * means[node, channel]))
            observations[extended.vertex_index(node, channel)] = value
            reward += means[node, channel]
        policy.observe(t, strategy, observations)
        rewards[t - 1] = reward
    return rewards


def main() -> None:
    rng = np.random.default_rng(SEED)
    graph = connected_random_network(NUM_USERS, NUM_CHANNELS, rng=rng)
    extended = ExtendedConflictGraph(graph)
    before, after = build_mean_matrices(rng)

    def means_provider(t):
        matrix = before if t <= FLIP_AT else after
        return matrix.reshape(-1)

    scale = float(before.max())
    policies = {
        "stationary UCB (paper)": CombinatorialUCBPolicy(
            extended, solver=ExactMWISSolver(), reward_scale=scale
        ),
        "sliding-window UCB (w=50)": SlidingWindowUCBPolicy(
            extended, window=50, solver=ExactMWISSolver(), reward_scale=scale
        ),
        "dynamic oracle": DynamicOraclePolicy(extended, means_provider),
    }

    print(
        f"Non-stationary study: {NUM_USERS} users, {NUM_CHANNELS} Gilbert-Elliott-style "
        f"channels, qualities flip at slot {FLIP_AT} of {HORIZON}.\n"
    )
    rows = []
    traces = {}
    for name, policy in policies.items():
        rewards = run_policy(policy, extended, before, after, rng)
        traces[name] = rewards
        rows.append(
            [
                name,
                rewards[:FLIP_AT].mean(),
                rewards[FLIP_AT:].mean(),
                rewards.mean(),
            ]
        )
    print(
        render_table(
            ["policy", "avg throughput before flip", "after flip", "overall"], rows
        )
    )

    oracle = traces["dynamic oracle"]
    print("\nStrong (dynamic-comparator) regret over the whole horizon:")
    for name in policies:
        if name == "dynamic oracle":
            continue
        strong_regret = float((oracle - traces[name]).sum())
        print(f"  {name:<28}: {strong_regret:,.0f} kbps-slots")
    print(
        "\nThe sliding-window learner recovers after the flip while the "
        "stationary policy keeps trusting stale estimates — the gap is the "
        "strong-regret price the paper's future-work section anticipates."
    )


if __name__ == "__main__":
    main()
