#!/usr/bin/env python3
"""Regret comparison (the Fig. 7 scenario): Algorithm 2 vs. the LLR policy.

Reproduces the Section V-B study on a configurable network: both learners use
the same distributed strategy-decision engine, the optimum is computed by
brute force, and the per-round practical regret / beta-regret are reported.

Run:  python examples/regret_comparison.py [--paper]

With ``--paper`` the exact Section V-B parameters are used (15 users, 3
channels, 1000 slots); without it a faster scaled-down configuration runs in
a few seconds.
"""

from __future__ import annotations

import argparse

from repro.experiments import Fig7Config, format_fig7, run_fig7


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--paper",
        action="store_true",
        help="run the exact paper-scale configuration (slower)",
    )
    parser.add_argument(
        "--rounds", type=int, default=None, help="override the number of time slots"
    )
    args = parser.parse_args()

    if args.paper:
        config = Fig7Config.from_scenario("fig7-paper")
    else:
        config = Fig7Config(num_nodes=10, num_channels=3, num_rounds=300, r=2)
    if args.rounds is not None:
        config = Fig7Config(
            num_nodes=config.num_nodes,
            num_channels=config.num_channels,
            num_rounds=args.rounds,
            r=config.r,
            alpha=config.alpha,
            average_degree=config.average_degree,
            seed=config.seed,
        )

    print(
        f"Running the Fig. 7 regret study: {config.num_nodes} users, "
        f"{config.num_channels} channels, {config.num_rounds} slots ..."
    )
    result = run_fig7(config)
    print()
    print(format_fig7(result))
    print()
    better = min(
        result.policies(), key=lambda name: result.converged_practical_regret(name)
    )
    print(f"Lower converged practical regret: {better}")


if __name__ == "__main__":
    main()
