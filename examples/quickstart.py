#!/usr/bin/env python3
"""Quickstart: learn a channel-access schedule on a small multi-hop network.

This example builds the smallest meaningful end-to-end scenario:

1. a connected random unit-disk network of 10 secondary users sharing 3
   channels (the multi-hop conflict structure of the paper's Section II);
2. an unknown channel environment drawn from the paper's 8-rate catalogue;
3. the paper's distributed channel-access scheme (combinatorial-UCB learning
   on top of the distributed robust PTAS strategy decision);
4. a comparison against the genie (oracle) that knows all channel means.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import ChannelAccessSystem, ChannelState, connected_random_network

NUM_USERS = 10
NUM_CHANNELS = 3
NUM_ROUNDS = 300
SEED = 7


def main() -> None:
    rng = np.random.default_rng(SEED)

    # 1. Topology: a connected random unit-disk conflict graph.
    graph = connected_random_network(NUM_USERS, NUM_CHANNELS, rng=rng)
    print(
        f"Network: {graph.num_nodes} users, {graph.num_edges} conflict edges, "
        f"{graph.num_channels} channels, average degree {graph.average_degree():.2f}"
    )

    # 2. Unknown channel environment (i.i.d. Gaussian rates, means from the
    #    paper's 150..1350 kbps catalogue).
    channels = ChannelState.random_paper_rates(NUM_USERS, NUM_CHANNELS, rng=rng)

    # 3. Wire everything together with the paper's defaults (Table II timing,
    #    distributed robust PTAS with r = 2).
    system = ChannelAccessSystem(graph, channels, seed=SEED)
    optimal = system.optimal_value()
    print(f"Optimal fixed-strategy throughput (genie): {optimal:.1f} kbps")

    policy = system.paper_policy()
    result = system.simulate(policy, num_rounds=NUM_ROUNDS, optimal_value=optimal)

    expected = result.expected_rewards()
    theta = system.timing.theta
    print(f"\nAfter {NUM_ROUNDS} rounds with theta = {theta:.2f}:")
    print(f"  average scheduled throughput : {expected.mean():.1f} kbps")
    print(f"  last-50-round average        : {expected[-50:].mean():.1f} kbps")
    print(f"  fraction of optimum          : {expected[-50:].mean() / optimal:.2%}")
    print(f"  cumulative regret            : {result.tracker.regret_trace()[-1]:.1f}")
    print(
        "  cumulative practical regret  : "
        f"{result.tracker.practical_regret_trace()[-1]:.1f}"
    )

    # 4. How expensive was the distributed strategy decision?
    costs = policy.solver.last_result.costs
    print("\nLast round's distributed strategy decision:")
    print(f"  mini-rounds                  : {costs.computation.mini_rounds}")
    print(
        f"  max messages per vertex      : {costs.communication.max_messages_per_vertex}"
    )
    print(f"  max stored weights per vertex: {costs.max_stored_weights}")


if __name__ == "__main__":
    main()
