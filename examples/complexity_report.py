#!/usr/bin/env python3
"""Complexity report: check the Section IV-C claims experimentally.

For a sweep of random networks this script runs one distributed strategy
decision per network and reports, per vertex, the measured number of control
messages, the stored neighbour weights and the largest local MWIS instance —
next to the paper's theoretical bounds (O(r^2 + D) messages, O(m) space,
local instances bounded by the (2r+1)-hop neighbourhood).

Run:  python examples/complexity_report.py
"""

from __future__ import annotations

from repro.experiments import ComplexityConfig, format_complexity, run_complexity
from repro.experiments.table2 import format_table2


def main() -> None:
    print("Round structure derived from Table II:")
    print(format_table2())
    print()
    config = ComplexityConfig(
        network_sizes=((20, 3), (40, 3), (80, 3), (40, 5), (80, 5)), r=2
    )
    print(
        "Measuring per-round communication / space / computation costs "
        f"on {len(config.network_sizes)} random networks (r = {config.r}) ..."
    )
    result = run_complexity(config)
    print()
    print(format_complexity(result))
    print()
    print(
        "Note how the per-vertex message count and storage stay flat as the\n"
        "network grows: they scale with the (2r+1)-hop neighbourhood, not with N."
    )


if __name__ == "__main__":
    main()
